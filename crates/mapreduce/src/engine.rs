//! Job execution: map tasks over input splits, hash-partitioned
//! sort-merge shuffle, reduce tasks, DFS output commit.
//!
//! Execution is multi-threaded but **deterministic**: map outputs are
//! concatenated in task order, reduce outputs in partition order, and the
//! shuffle sort is stable, so the bytes written to the DFS do not depend
//! on the number of worker threads.

use crate::config::{ClusterConfig, EngineConfig};
use crate::cost::{CostModel, JobTimes};
use crate::counters::Counters;
use crate::job::JobSpec;
use crate::split_reader::read_split;
use crate::task::{MapContext, ReduceContext};
use parking_lot::Mutex;
use restore_common::{codec, Error, Result, Tuple};
use restore_dfs::{Dfs, FileSplit};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Result of one executed job: measured counters, modeled times, output
/// locations.
#[derive(Debug, Clone)]
pub struct JobResult {
    pub job_name: String,
    pub counters: Counters,
    pub times: JobTimes,
    pub output: String,
    pub side_outputs: Vec<String>,
}

/// The MapReduce engine. Holds the DFS handle and configuration; cheap to
/// clone.
#[derive(Clone)]
pub struct Engine {
    dfs: Dfs,
    cluster: ClusterConfig,
    engine_cfg: EngineConfig,
}

struct MapTaskOut {
    /// Shuffle records per reduce partition.
    partitions: Vec<Vec<(Tuple, usize, Tuple)>>,
    /// Direct output (map-only jobs).
    direct: Vec<Tuple>,
    /// Side-output records per channel.
    side: Vec<Vec<Tuple>>,
    counters: Counters,
}

struct ReduceTaskOut {
    output: Vec<Tuple>,
    side: Vec<Vec<Tuple>>,
    counters: Counters,
}

impl Engine {
    pub fn new(dfs: Dfs, cluster: ClusterConfig, engine_cfg: EngineConfig) -> Self {
        Engine { dfs, cluster, engine_cfg }
    }

    /// Engine with default cluster and engine configuration.
    pub fn with_defaults(dfs: Dfs) -> Self {
        Engine::new(dfs, ClusterConfig::default(), EngineConfig::default())
    }

    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    pub fn cluster_config(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Override the cluster (cost-model) configuration.
    pub fn set_cluster_config(&mut self, cfg: ClusterConfig) {
        self.cluster = cfg;
    }

    /// Execute one job to completion.
    pub fn run(&self, spec: &JobSpec) -> Result<JobResult> {
        if spec.inputs.is_empty() {
            return Err(Error::Job(format!("job {:?} has no inputs", spec.name)));
        }
        // Plan input splits, tagged with their input index.
        let mut splits: Vec<(usize, FileSplit, u64)> = Vec::new();
        for (tag, input) in spec.inputs.iter().enumerate() {
            let file_len = self.dfs.file_len(&input.path)?;
            for s in self.dfs.splits(&input.path)? {
                splits.push((tag, s, file_len));
            }
        }

        let reduce_tasks = if spec.is_map_only() {
            0
        } else {
            spec.reduce_tasks.unwrap_or(self.engine_cfg.default_reduce_tasks).max(1)
        };
        let n_side = spec.side_outputs.len();

        // ---- Map phase ----
        let map_outs = self.run_map_tasks(spec, &splits, reduce_tasks, n_side)?;

        let mut counters = Counters::default();
        for out in &map_outs {
            counters.absorb(&out.counters);
        }
        counters.map_tasks = map_outs.len() as u64;
        counters.reduce_tasks = reduce_tasks as u64;

        // Collect map-phase side outputs (task order) before the reduce
        // phase consumes `map_outs`.
        let mut side_tuples: Vec<Vec<Tuple>> = vec![Vec::new(); n_side];
        for out in &map_outs {
            for (c, ts) in out.side.iter().enumerate() {
                side_tuples[c].extend_from_slice(ts);
            }
        }

        // ---- Reduce phase / output assembly ----
        let output_tuples: Vec<Tuple> = if reduce_tasks == 0 {
            map_outs.into_iter().flat_map(|o| o.direct).collect()
        } else {
            let reduce_outs = self.run_reduce_tasks(spec, map_outs, reduce_tasks, n_side)?;
            let mut all = Vec::new();
            for out in reduce_outs {
                counters.absorb(&out.counters);
                for (c, ts) in out.side.into_iter().enumerate() {
                    side_tuples[c].extend(ts);
                }
                all.extend(out.output);
            }
            all
        };

        // ---- Commit outputs ----
        let encoded = codec::encode_all(&output_tuples);
        counters.output_records = output_tuples.len() as u64;
        counters.output_bytes = encoded.len() as u64;
        let mut w = self.dfs.create_overwrite(&spec.output)?;
        w.write(&encoded);
        w.close()?;

        counters.side_output_bytes = vec![0; n_side];
        for (c, ts) in side_tuples.iter().enumerate() {
            let bytes = codec::encode_all(ts);
            counters.side_output_bytes[c] = bytes.len() as u64;
            let mut w = self.dfs.create_overwrite(&spec.side_outputs[c])?;
            w.write(&bytes);
            w.close()?;
        }

        let times = CostModel::new(self.cluster.clone()).job_times(spec, &counters);
        Ok(JobResult {
            job_name: spec.name.clone(),
            counters,
            times,
            output: spec.output.clone(),
            side_outputs: spec.side_outputs.clone(),
        })
    }

    fn run_map_tasks(
        &self,
        spec: &JobSpec,
        splits: &[(usize, FileSplit, u64)],
        reduce_tasks: usize,
        n_side: usize,
    ) -> Result<Vec<MapTaskOut>> {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, Result<MapTaskOut>)>> =
            Mutex::new(Vec::with_capacity(splits.len()));
        let threads = self.engine_cfg.worker_threads.max(1).min(splits.len().max(1));

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= splits.len() {
                        break;
                    }
                    let (tag, split, file_len) = &splits[idx];
                    let out =
                        self.run_one_map_task(spec, *tag, split, *file_len, reduce_tasks, n_side);
                    results.lock().push((idx, out));
                });
            }
        });

        let mut results = results.into_inner();
        results.sort_by_key(|(i, _)| *i);
        results.into_iter().map(|(_, r)| r).collect()
    }

    fn run_one_map_task(
        &self,
        spec: &JobSpec,
        tag: usize,
        split: &FileSplit,
        file_len: u64,
        reduce_tasks: usize,
        n_side: usize,
    ) -> Result<MapTaskOut> {
        let (tuples, payload_bytes) = read_split(&self.dfs, split, file_len)?;
        let mut mapper = spec.mapper.create();
        let mut ctx = MapContext::new(n_side);
        let mut counters = Counters {
            map_input_records: tuples.len() as u64,
            map_input_bytes: payload_bytes,
            ..Default::default()
        };
        for t in tuples {
            mapper.map(tag, t, &mut ctx)?;
        }
        mapper.finish(&mut ctx)?;

        let mut partitions: Vec<Vec<(Tuple, usize, Tuple)>> =
            (0..reduce_tasks).map(|_| Vec::new()).collect();
        for (key, vtag, value) in ctx.shuffle {
            counters.map_output_records += 1;
            counters.map_output_bytes += (key.encoded_len() + value.encoded_len()) as u64;
            if reduce_tasks > 0 {
                let p = partition_of(&key, reduce_tasks);
                partitions[p].push((key, vtag, value));
            }
        }
        counters.map_direct_output_records = ctx.direct.len() as u64;
        for ts in &ctx.side {
            counters.map_side_bytes += ts.iter().map(|t| t.encoded_len() as u64).sum::<u64>();
        }
        Ok(MapTaskOut { partitions, direct: ctx.direct, side: ctx.side, counters })
    }

    fn run_reduce_tasks(
        &self,
        spec: &JobSpec,
        map_outs: Vec<MapTaskOut>,
        reduce_tasks: usize,
        n_side: usize,
    ) -> Result<Vec<ReduceTaskOut>> {
        let n_tags = spec.shuffle_tags.unwrap_or(spec.inputs.len()).max(1);
        // Gather shuffle input per partition, preserving map-task order so
        // the stable sort keeps results deterministic. Each partition gets
        // its own lock so reduce workers can take them independently.
        let partition_in: Vec<Mutex<Vec<(Tuple, usize, Tuple)>>> =
            (0..reduce_tasks).map(|_| Mutex::new(Vec::new())).collect();
        for mut out in map_outs {
            for (p, recs) in out.partitions.drain(..).enumerate() {
                partition_in[p].lock().extend(recs);
            }
        }

        let reducer_factory = spec
            .reducer
            .as_ref()
            .ok_or_else(|| Error::Job("reduce phase without reducer".into()))?;

        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, Result<ReduceTaskOut>)>> =
            Mutex::new(Vec::with_capacity(reduce_tasks));
        let threads = self.engine_cfg.worker_threads.max(1).min(reduce_tasks);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= reduce_tasks {
                        break;
                    }
                    let recs = std::mem::take(&mut *partition_in[idx].lock());
                    let out = run_one_reduce_task(reducer_factory.as_ref(), recs, n_tags, n_side);
                    results.lock().push((idx, out));
                });
            }
        });

        let mut results = results.into_inner();
        results.sort_by_key(|(i, _)| *i);
        results.into_iter().map(|(_, r)| r).collect()
    }
}

/// Stable hash partitioner (`DefaultHasher` has fixed keys, so
/// partitioning is reproducible across runs and platforms).
fn partition_of(key: &Tuple, reduce_tasks: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % reduce_tasks as u64) as usize
}

fn run_one_reduce_task(
    factory: &dyn crate::task::ReducerFactory,
    mut records: Vec<(Tuple, usize, Tuple)>,
    n_tags: usize,
    n_side: usize,
) -> Result<ReduceTaskOut> {
    // Stable sort by key only: within a key, map-task emission order is
    // preserved, keeping bag contents deterministic.
    records.sort_by(|a, b| a.0.cmp(&b.0));

    let mut reducer = factory.create();
    let mut ctx = ReduceContext::new(n_side);
    let mut counters = Counters::default();

    let mut records = records.into_iter().peekable();
    while let Some((key, tag, value)) = records.next() {
        let mut bags: Vec<Vec<Tuple>> = (0..n_tags).map(|_| Vec::new()).collect();
        counters.reduce_input_records += 1;
        bags[tag].push(value);
        while let Some((k, _, _)) = records.peek() {
            if *k != key {
                break;
            }
            let (_, tag, value) = records.next().expect("peeked");
            counters.reduce_input_records += 1;
            bags[tag].push(value);
        }
        counters.reduce_input_groups += 1;
        reducer.reduce(&key, &bags, &mut ctx)?;
    }
    reducer.finish(&mut ctx)?;

    for ts in &ctx.side {
        counters.reduce_side_bytes += ts.iter().map(|t| t.encoded_len() as u64).sum::<u64>();
    }
    Ok(ReduceTaskOut { output: ctx.output, side: ctx.side, counters })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Mapper, Reducer};
    use restore_common::{tuple, Value};
    use restore_dfs::DfsConfig;
    use std::sync::Arc;

    fn small_engine(threads: usize) -> Engine {
        let dfs =
            Dfs::new(DfsConfig { nodes: 4, block_size: 64, replication: 2, node_capacity: None });
        Engine::new(
            dfs,
            ClusterConfig::default(),
            EngineConfig { worker_threads: threads, default_reduce_tasks: 3 },
        )
    }

    fn write_tuples(dfs: &Dfs, path: &str, tuples: &[Tuple]) {
        dfs.write_all(path, &codec::encode_all(tuples)).unwrap();
    }

    fn read_tuples(dfs: &Dfs, path: &str) -> Vec<Tuple> {
        codec::decode_all(&dfs.read_all(path).unwrap()).unwrap()
    }

    /// Mapper emitting (word, 1); reducer summing counts — the classic.
    struct WcMap;
    impl Mapper for WcMap {
        fn map(&mut self, tag: usize, record: Tuple, ctx: &mut MapContext) -> Result<()> {
            ctx.emit(Tuple::from_values(vec![record.get(0).clone()]), tag, tuple![1]);
            Ok(())
        }
    }
    struct WcReduce;
    impl Reducer for WcReduce {
        fn reduce(
            &mut self,
            key: &Tuple,
            bags: &[Vec<Tuple>],
            ctx: &mut ReduceContext,
        ) -> Result<()> {
            let count = bags[0].len() as i64;
            ctx.output(Tuple::from_values(vec![key.get(0).clone(), Value::Int(count)]));
            Ok(())
        }
    }

    fn word_count_job(input: &str, output: &str) -> JobSpec {
        let mut spec = JobSpec::new(
            "wordcount",
            vec![crate::job::JobInput::new(input)],
            output,
            Arc::new(|| Box::new(WcMap) as Box<dyn Mapper>),
            Some(Arc::new(|| Box::new(WcReduce) as Box<dyn Reducer>)),
        );
        spec.reduce_tasks = Some(3);
        spec
    }

    #[test]
    fn word_count_end_to_end() {
        let eng = small_engine(4);
        let words = ["apple", "pear", "apple", "fig", "pear", "apple"];
        let input: Vec<Tuple> = words.iter().map(|w| tuple![*w]).collect();
        write_tuples(eng.dfs(), "/in", &input);
        let res = eng.run(&word_count_job("/in", "/out")).unwrap();

        let mut out = read_tuples(eng.dfs(), "/out");
        out.sort();
        assert_eq!(out, vec![tuple!["apple", 3], tuple!["fig", 1], tuple!["pear", 2]]);
        assert_eq!(res.counters.map_input_records, 6);
        assert_eq!(res.counters.map_output_records, 6);
        assert_eq!(res.counters.reduce_input_groups, 3);
        assert_eq!(res.counters.output_records, 3);
        assert_eq!(res.counters.reduce_tasks, 3);
        assert!(res.times.total_s > 0.0);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mk_input = |eng: &Engine| {
            let input: Vec<Tuple> =
                (0..500).map(|i| tuple![format!("w{}", i % 17), i as i64]).collect();
            write_tuples(eng.dfs(), "/in", &input);
        };
        let run = |threads: usize| {
            let eng = small_engine(threads);
            mk_input(&eng);
            eng.run(&word_count_job("/in", "/out")).unwrap();
            eng.dfs().read_all("/out").unwrap()
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn map_only_job_writes_direct_output() {
        struct ProjectFirst;
        impl Mapper for ProjectFirst {
            fn map(&mut self, _tag: usize, record: Tuple, ctx: &mut MapContext) -> Result<()> {
                ctx.output(record.project(&[0]));
                Ok(())
            }
        }
        let eng = small_engine(2);
        write_tuples(eng.dfs(), "/in", &[tuple![1, "a"], tuple![2, "b"]]);
        let spec = JobSpec::new(
            "proj",
            vec![crate::job::JobInput::new("/in")],
            "/out",
            Arc::new(|| Box::new(ProjectFirst) as Box<dyn Mapper>),
            None,
        );
        let res = eng.run(&spec).unwrap();
        assert!(res.counters.is_map_only());
        assert_eq!(read_tuples(eng.dfs(), "/out"), vec![tuple![1], tuple![2]]);
    }

    #[test]
    fn join_via_tags() {
        // Input 0: (name); Input 1: (user, revenue). Join on key.
        struct JoinMap;
        impl Mapper for JoinMap {
            fn map(&mut self, tag: usize, record: Tuple, ctx: &mut MapContext) -> Result<()> {
                ctx.emit(Tuple::from_values(vec![record.get(0).clone()]), tag, record);
                Ok(())
            }
        }
        struct JoinReduce;
        impl Reducer for JoinReduce {
            fn reduce(
                &mut self,
                _k: &Tuple,
                bags: &[Vec<Tuple>],
                ctx: &mut ReduceContext,
            ) -> Result<()> {
                for l in &bags[0] {
                    for r in &bags[1] {
                        ctx.output(l.concat(r));
                    }
                }
                Ok(())
            }
        }
        let eng = small_engine(4);
        write_tuples(eng.dfs(), "/users", &[tuple!["ann"], tuple!["bob"]]);
        write_tuples(
            eng.dfs(),
            "/views",
            &[tuple!["ann", 10], tuple!["cid", 99], tuple!["ann", 5]],
        );
        let mut spec = JobSpec::new(
            "join",
            vec![crate::job::JobInput::new("/users"), crate::job::JobInput::new("/views")],
            "/out",
            Arc::new(|| Box::new(JoinMap) as Box<dyn Mapper>),
            Some(Arc::new(|| Box::new(JoinReduce) as Box<dyn Reducer>)),
        );
        spec.reduce_tasks = Some(2);
        eng.run(&spec).unwrap();
        let mut out = read_tuples(eng.dfs(), "/out");
        out.sort();
        assert_eq!(out, vec![tuple!["ann", "ann", 5], tuple!["ann", "ann", 10]]);
    }

    #[test]
    fn side_outputs_written_from_map_and_reduce() {
        struct TeeMap;
        impl Mapper for TeeMap {
            fn map(&mut self, tag: usize, record: Tuple, ctx: &mut MapContext) -> Result<()> {
                ctx.side(0, record.clone());
                ctx.emit(Tuple::from_values(vec![record.get(0).clone()]), tag, record);
                Ok(())
            }
        }
        struct TeeReduce;
        impl Reducer for TeeReduce {
            fn reduce(
                &mut self,
                key: &Tuple,
                bags: &[Vec<Tuple>],
                ctx: &mut ReduceContext,
            ) -> Result<()> {
                let t =
                    Tuple::from_values(vec![key.get(0).clone(), Value::Int(bags[0].len() as i64)]);
                ctx.side(1, t.clone());
                ctx.output(t);
                Ok(())
            }
        }
        let eng = small_engine(3);
        write_tuples(eng.dfs(), "/in", &[tuple!["a", 1], tuple!["a", 2], tuple!["b", 3]]);
        let mut spec = JobSpec::new(
            "tee",
            vec![crate::job::JobInput::new("/in")],
            "/out",
            Arc::new(|| Box::new(TeeMap) as Box<dyn Mapper>),
            Some(Arc::new(|| Box::new(TeeReduce) as Box<dyn Reducer>)),
        );
        spec.side_outputs = vec!["/side/map".into(), "/side/reduce".into()];
        spec.reduce_tasks = Some(2);
        let res = eng.run(&spec).unwrap();

        let mut side_map = read_tuples(eng.dfs(), "/side/map");
        side_map.sort();
        assert_eq!(side_map, vec![tuple!["a", 1], tuple!["a", 2], tuple!["b", 3]]);
        let mut side_red = read_tuples(eng.dfs(), "/side/reduce");
        side_red.sort();
        assert_eq!(side_red, vec![tuple!["a", 2], tuple!["b", 1]]);
        assert_eq!(res.counters.side_output_bytes.len(), 2);
        assert!(res.counters.map_side_bytes > 0);
        assert!(res.counters.reduce_side_bytes > 0);
    }

    #[test]
    fn empty_input_produces_empty_output_file() {
        let eng = small_engine(2);
        write_tuples(eng.dfs(), "/in", &[]);
        let res = eng.run(&word_count_job("/in", "/out")).unwrap();
        assert_eq!(res.counters.output_records, 0);
        assert!(eng.dfs().exists("/out"));
        assert_eq!(eng.dfs().file_len("/out").unwrap(), 0);
    }

    #[test]
    fn missing_input_is_an_error() {
        let eng = small_engine(1);
        let err = eng.run(&word_count_job("/nope", "/out")).unwrap_err();
        assert!(matches!(err, Error::FileNotFound(_)));
    }

    #[test]
    fn jobs_without_inputs_rejected() {
        let eng = small_engine(1);
        let spec = JobSpec::new(
            "empty",
            vec![],
            "/out",
            Arc::new(|| Box::new(WcMap) as Box<dyn Mapper>),
            None,
        );
        assert!(matches!(eng.run(&spec), Err(Error::Job(_))));
    }
}
