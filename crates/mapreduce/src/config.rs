//! Engine and cluster configuration.

/// Physical description of the modeled cluster plus the rate parameters of
/// the analytical cost model. Defaults mirror the paper's testbed: 15
/// servers, one dedicated master, 14 workers each running 4 map slots and
/// 2 reduce slots, HDFS on local SCSI disks.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker (tasktracker) nodes; the master is not counted.
    pub worker_nodes: usize,
    /// Concurrent map tasks per worker.
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per worker.
    pub reduce_slots_per_node: usize,
    /// Effective scan bandwidth per task (disk + record parsing),
    /// bytes/second. Calibrated to Pig-0.8-era task throughput, not raw
    /// disk speed.
    pub disk_read_bps: f64,
    /// Effective write bandwidth per task, bytes/second (the replication
    /// pipeline multiplies on top).
    pub disk_write_bps: f64,
    /// Shuffle (network + merge) bandwidth per reduce task, bytes/second.
    pub shuffle_bps: f64,
    /// Effective bandwidth of *injected side Stores* (ReStore sub-job
    /// materialization), bytes/second per task. Slower than the main
    /// output path: these writes interleave with pipeline execution and
    /// pay full serialization (the paper's §7.2 overhead).
    pub side_store_bps: f64,
    /// Fixed commit cost per side-output channel per job, seconds
    /// (output-committer + namenode work for the extra files). This is
    /// what makes store-injection overhead *relatively* worse on the
    /// 15 GB instance than the 150 GB one (Figure 11).
    pub side_commit_s: f64,
    /// Base CPU cost per record per unit operator weight, seconds.
    pub cpu_per_record_weight: f64,
    /// Sort CPU/IO cost per byte per log2(records) — the `T_sort` term.
    pub sort_cost_per_byte_log: f64,
    /// Fixed job submission/startup latency, seconds (JVM spin-up etc.).
    pub job_startup_s: f64,
    /// Scheduling overhead per task wave, seconds.
    pub wave_overhead_s: f64,
    /// Replication factor charged on final output writes.
    pub replication: usize,
    /// Multiplier from *actual* bytes processed in-process to *modeled*
    /// bytes on the paper's cluster. Experiments run on scaled-down data
    /// (e.g. 1/1000th) and set this to the inverse scale so modeled times
    /// land in the paper's range. Ratios (speedup, overhead) are invariant
    /// to this knob.
    pub byte_scale: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            worker_nodes: 14,
            map_slots_per_node: 4,
            reduce_slots_per_node: 2,
            disk_read_bps: 10.0 * 1024.0 * 1024.0,
            disk_write_bps: 15.0 * 1024.0 * 1024.0,
            shuffle_bps: 10.0 * 1024.0 * 1024.0,
            side_store_bps: 1.0 * 1024.0 * 1024.0,
            side_commit_s: 20.0,
            cpu_per_record_weight: 2.0e-6,
            sort_cost_per_byte_log: 4.0e-10,
            job_startup_s: 10.0,
            wave_overhead_s: 2.0,
            replication: 3,
            byte_scale: 1.0,
        }
    }
}

impl ClusterConfig {
    /// Total concurrent map tasks the cluster can run.
    pub fn map_slots(&self) -> usize {
        self.worker_nodes * self.map_slots_per_node
    }

    /// Total concurrent reduce tasks the cluster can run.
    pub fn reduce_slots(&self) -> usize {
        self.worker_nodes * self.reduce_slots_per_node
    }

    /// Paper-testbed configuration with a byte-scale factor applied.
    pub fn paper_testbed(byte_scale: f64) -> Self {
        ClusterConfig { byte_scale, ..Default::default() }
    }
}

/// Execution knobs for the in-process engine (as opposed to the modeled
/// cluster).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// OS threads used to run map/reduce tasks.
    pub worker_threads: usize,
    /// Reduce task count when a job does not specify one.
    pub default_reduce_tasks: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            worker_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            default_reduce_tasks: 28,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_math() {
        let c = ClusterConfig::default();
        assert_eq!(c.map_slots(), 56);
        assert_eq!(c.reduce_slots(), 28);
    }

    #[test]
    fn paper_testbed_sets_scale() {
        let c = ClusterConfig::paper_testbed(1000.0);
        assert_eq!(c.byte_scale, 1000.0);
        assert_eq!(c.worker_nodes, 14);
    }
}
