//! MapReduce execution engine over the simulated DFS.
//!
//! Hadoop stand-in for the ReStore reproduction. Jobs *really execute*:
//! mappers consume decoded tuples from block-aligned input splits, a
//! hash-partitioned sort-merge shuffle groups map output by key (and by
//! input tag, so Join/CoGroup see co-grouped bags), and reducers write the
//! final output back to the DFS. Injected `Store` operators surface as
//! **side outputs** — extra files written during map or reduce, exactly how
//! ReStore materializes sub-jobs.
//!
//! "Execution time" in the paper is wall-clock on a 15-node cluster; here
//! it is produced by [`cost::CostModel`], an analytical model implementing
//! the paper's Equation (2) (`ET(Job) = T_load + Σ ET(op_i) + T_sort +
//! T_store`) fed with the *measured* counters of the real in-process run.
//! [`workflow`] implements Equation (1): a job's total time is its own
//! execution time plus the slowest chain of jobs it depends on.
//!
//! The split between this crate and `restore-dataflow` mirrors
//! Hadoop/Pig: this crate knows nothing about query plans — it executes
//! [`task::Mapper`]/[`task::Reducer`] implementations provided by the
//! dataflow layer.

pub mod config;
pub mod cost;
pub mod counters;
pub mod engine;
pub mod job;
pub mod split_reader;
pub mod task;
pub mod workflow;

pub use config::{ClusterConfig, EngineConfig};
pub use cost::{CostModel, JobTimes};
pub use counters::Counters;
pub use engine::{Engine, JobResult};
pub use job::{JobInput, JobSpec};
pub use task::{MapContext, Mapper, MapperFactory, ReduceContext, Reducer, ReducerFactory};
pub use workflow::{Workflow, WorkflowResult};
