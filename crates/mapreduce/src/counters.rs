//! Per-job execution counters.
//!
//! The engine measures these during the real in-process run; the cost
//! model converts them to modeled cluster time. Hadoop exposes the same
//! quantities through its counter framework (the paper stores "the size of
//! the input and output data, and the average execution time of the
//! mappers and reducers" in the repository — all derived from these).

/// Measured quantities of one executed job (actual, unscaled bytes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Counters {
    /// Input records consumed by mappers.
    pub map_input_records: u64,
    /// Bytes of input splits read by mappers.
    pub map_input_bytes: u64,
    /// Records emitted by mappers into the shuffle.
    pub map_output_records: u64,
    /// Encoded bytes emitted into the shuffle.
    pub map_output_bytes: u64,
    /// Records written directly by a map-only job.
    pub map_direct_output_records: u64,
    /// Distinct keys seen by reducers.
    pub reduce_input_groups: u64,
    /// Records consumed by reducers.
    pub reduce_input_records: u64,
    /// Records written by reducers (or by mappers for map-only jobs).
    pub output_records: u64,
    /// Encoded bytes of the job's main output.
    pub output_bytes: u64,
    /// Encoded bytes written to each side output (injected Store), by
    /// channel index.
    pub side_output_bytes: Vec<u64>,
    /// Side output bytes written during the map phase (affects map time).
    pub map_side_bytes: u64,
    /// Side output bytes written during the reduce phase.
    pub reduce_side_bytes: u64,
    /// Number of map tasks launched.
    pub map_tasks: u64,
    /// Number of reduce tasks launched (0 for map-only jobs).
    pub reduce_tasks: u64,
}

impl Counters {
    /// Total side-output bytes across channels.
    pub fn side_bytes_total(&self) -> u64 {
        self.side_output_bytes.iter().sum()
    }

    /// True when the job ran without a reduce phase.
    pub fn is_map_only(&self) -> bool {
        self.reduce_tasks == 0
    }

    /// Merge task-level counters into the job-level aggregate.
    pub fn absorb(&mut self, other: &Counters) {
        self.map_input_records += other.map_input_records;
        self.map_input_bytes += other.map_input_bytes;
        self.map_output_records += other.map_output_records;
        self.map_output_bytes += other.map_output_bytes;
        self.map_direct_output_records += other.map_direct_output_records;
        self.reduce_input_groups += other.reduce_input_groups;
        self.reduce_input_records += other.reduce_input_records;
        self.output_records += other.output_records;
        self.output_bytes += other.output_bytes;
        if self.side_output_bytes.len() < other.side_output_bytes.len() {
            self.side_output_bytes.resize(other.side_output_bytes.len(), 0);
        }
        for (i, b) in other.side_output_bytes.iter().enumerate() {
            self.side_output_bytes[i] += b;
        }
        self.map_side_bytes += other.map_side_bytes;
        self.reduce_side_bytes += other.reduce_side_bytes;
        self.map_tasks += other.map_tasks;
        self.reduce_tasks += other.reduce_tasks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields_and_channels() {
        let mut a =
            Counters { map_input_records: 10, side_output_bytes: vec![5], ..Default::default() };
        let b =
            Counters { map_input_records: 7, side_output_bytes: vec![1, 2], ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.map_input_records, 17);
        assert_eq!(a.side_output_bytes, vec![6, 2]);
        assert_eq!(a.side_bytes_total(), 8);
    }

    #[test]
    fn map_only_detection() {
        let c = Counters::default();
        assert!(c.is_map_only());
        let c = Counters { reduce_tasks: 4, ..Default::default() };
        assert!(!c.is_map_only());
    }
}
