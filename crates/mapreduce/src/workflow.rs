//! Workflows of MapReduce jobs — the paper's Equation (1).
//!
//! A dataflow query compiles into a DAG of jobs; a job starts only after
//! all jobs it depends on finish. Total time follows Equation (1):
//!
//! `T_total(Job_n) = ET(Job_n) + max_{i ∈ Y} T_total(Job_i)`
//!
//! where `Y` is the set of jobs `Job_n` depends on. The scheduler executes
//! jobs in dependency waves exactly like Pig's `JobControlCompiler`
//! iterations (§6.1), and reports both per-job and critical-path totals.

use crate::engine::{Engine, JobResult};
use crate::job::JobSpec;
use restore_common::{Error, Result};

/// A DAG of jobs with explicit dependencies.
#[derive(Clone, Default)]
pub struct Workflow {
    jobs: Vec<JobSpec>,
    /// `deps[i]` = indices of jobs that job `i` depends on.
    deps: Vec<Vec<usize>>,
}

impl std::fmt::Debug for Workflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workflow")
            .field("jobs", &self.jobs.iter().map(|j| &j.name).collect::<Vec<_>>())
            .field("deps", &self.deps)
            .finish()
    }
}

/// Result of executing a workflow.
#[derive(Debug, Clone)]
pub struct WorkflowResult {
    /// Per-job results in job-index order.
    pub job_results: Vec<JobResult>,
    /// `T_total` per job per Equation (1).
    pub job_total_s: Vec<f64>,
    /// Workflow completion time = max over jobs of `T_total`.
    pub total_s: f64,
    /// One critical path (job indices from source to sink).
    pub critical_path: Vec<usize>,
}

impl Workflow {
    pub fn new() -> Self {
        Workflow::default()
    }

    /// Add a job, returning its index.
    pub fn add_job(&mut self, spec: JobSpec) -> usize {
        self.jobs.push(spec);
        self.deps.push(Vec::new());
        self.jobs.len() - 1
    }

    /// Declare that `job` depends on `on`.
    pub fn add_dependency(&mut self, job: usize, on: usize) {
        assert!(job < self.jobs.len() && on < self.jobs.len(), "unknown job index");
        if !self.deps[job].contains(&on) {
            self.deps[job].push(on);
        }
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    pub fn job(&self, idx: usize) -> &JobSpec {
        &self.jobs[idx]
    }

    pub fn job_mut(&mut self, idx: usize) -> &mut JobSpec {
        &mut self.jobs[idx]
    }

    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    pub fn dependencies(&self, idx: usize) -> &[usize] {
        &self.deps[idx]
    }

    /// Kahn topological sort; errors on cycles.
    pub fn topo_order(&self) -> Result<Vec<usize>> {
        let n = self.jobs.len();
        // indegree counts *dependencies remaining* per job.
        let mut indegree = vec![0usize; n];
        for (i, ds) in self.deps.iter().enumerate() {
            indegree[i] = ds.len();
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(i);
            for (j, deps) in self.deps.iter().enumerate() {
                if deps.contains(&i) {
                    indegree[j] -= 1;
                    if indegree[j] == 0 {
                        ready.push(j);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(Error::Workflow("dependency cycle detected".into()));
        }
        Ok(order)
    }

    /// Dependency waves: jobs grouped by the `JobControlCompiler`
    /// iteration in which they would be submitted (all dependencies
    /// satisfied by earlier waves). Stable within a wave (job index order).
    pub fn waves(&self) -> Result<Vec<Vec<usize>>> {
        let n = self.jobs.len();
        let mut done = vec![false; n];
        let mut waves = Vec::new();
        let mut remaining = n;
        while remaining > 0 {
            let wave: Vec<usize> =
                (0..n).filter(|&i| !done[i] && self.deps[i].iter().all(|&d| done[d])).collect();
            if wave.is_empty() {
                return Err(Error::Workflow("dependency cycle detected".into()));
            }
            for &i in &wave {
                done[i] = true;
            }
            remaining -= wave.len();
            waves.push(wave);
        }
        Ok(waves)
    }

    /// Equation (1) totals, given per-job `ET` values. Returns
    /// (per-job totals, overall total, critical path).
    pub fn total_times(&self, et: &[f64]) -> Result<(Vec<f64>, f64, Vec<usize>)> {
        assert_eq!(et.len(), self.jobs.len());
        let order = self.topo_order()?;
        let mut totals = vec![0.0f64; et.len()];
        let mut pred: Vec<Option<usize>> = vec![None; et.len()];
        for &i in &order {
            let mut slowest = 0.0f64;
            for &d in &self.deps[i] {
                if totals[d] > slowest {
                    slowest = totals[d];
                    pred[i] = Some(d);
                }
            }
            totals[i] = et[i] + slowest;
        }
        let (sink, &total) = totals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN times"))
            .ok_or_else(|| Error::Workflow("empty workflow".into()))?;
        let mut path = vec![sink];
        let mut cur = sink;
        while let Some(p) = pred[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Ok((totals, total, path))
    }
}

impl Engine {
    /// Execute an entire workflow in dependency waves — the jobs of each
    /// wave concurrently, since they share no dependency edges — then
    /// compute Equation (1) totals from the modeled per-job times.
    ///
    /// Outputs are byte-identical to one-job-at-a-time execution: jobs
    /// within a wave write disjoint files, and per-job execution is
    /// already deterministic regardless of worker threading.
    pub fn run_workflow(&self, wf: &Workflow) -> Result<WorkflowResult> {
        let waves = wf.waves()?;
        let mut results: Vec<Option<JobResult>> = vec![None; wf.len()];
        for wave in waves {
            let outcomes: Vec<Result<JobResult>> = if wave.len() == 1 {
                vec![self.run(wf.job(wave[0]))]
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = wave
                        .iter()
                        .map(|&idx| scope.spawn(move || self.run(wf.job(idx))))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("wave job thread panicked"))
                        .collect()
                })
            };
            // Errors surface in job-index order, matching what strictly
            // sequential submission would have reported first.
            for (idx, outcome) in wave.into_iter().zip(outcomes) {
                results[idx] = Some(outcome?);
            }
        }
        let job_results: Vec<JobResult> =
            results.into_iter().map(|r| r.expect("all jobs ran")).collect();
        let et: Vec<f64> = job_results.iter().map(|r| r.times.total_s).collect();
        let (job_total_s, total_s, critical_path) = wf.total_times(&et)?;
        Ok(WorkflowResult { job_results, job_total_s, total_s, critical_path })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, EngineConfig};
    use crate::job::JobInput;
    use crate::task::{MapContext, Mapper};
    use restore_common::{codec, tuple, Tuple};
    use restore_dfs::{Dfs, DfsConfig};
    use std::sync::Arc;

    struct PassThrough;
    impl Mapper for PassThrough {
        fn map(
            &mut self,
            _tag: usize,
            record: Tuple,
            ctx: &mut MapContext,
        ) -> restore_common::Result<()> {
            ctx.output(record);
            Ok(())
        }
    }

    fn pass_job(name: &str, input: &str, output: &str) -> JobSpec {
        JobSpec::new(
            name,
            vec![JobInput::new(input)],
            output,
            Arc::new(|| Box::new(PassThrough) as Box<dyn Mapper>),
            None,
        )
    }

    fn diamond() -> Workflow {
        // j0 -> j1, j0 -> j2, {j1, j2} -> j3
        let mut wf = Workflow::new();
        let j0 = wf.add_job(pass_job("j0", "/in", "/a"));
        let j1 = wf.add_job(pass_job("j1", "/a", "/b"));
        let j2 = wf.add_job(pass_job("j2", "/a", "/c"));
        let j3 = wf.add_job(pass_job("j3", "/b", "/d"));
        wf.add_dependency(j1, j0);
        wf.add_dependency(j2, j0);
        wf.add_dependency(j3, j1);
        wf.add_dependency(j3, j2);
        wf
    }

    #[test]
    fn waves_respect_dependencies() {
        let wf = diamond();
        let waves = wf.waves().unwrap();
        assert_eq!(waves, vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn topo_order_is_valid() {
        let wf = diamond();
        let order = wf.topo_order().unwrap();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn cycle_is_detected() {
        let mut wf = Workflow::new();
        let a = wf.add_job(pass_job("a", "/x", "/y"));
        let b = wf.add_job(pass_job("b", "/y", "/x"));
        wf.add_dependency(a, b);
        wf.add_dependency(b, a);
        assert!(wf.topo_order().is_err());
        assert!(wf.waves().is_err());
    }

    #[test]
    fn equation_one_totals() {
        let wf = diamond();
        // ET: j0=10, j1=5, j2=20, j3=1.
        let (totals, total, path) = wf.total_times(&[10.0, 5.0, 20.0, 1.0]).unwrap();
        assert_eq!(totals, vec![10.0, 15.0, 30.0, 31.0]);
        assert_eq!(total, 31.0);
        // Critical path goes through the slow branch j2.
        assert_eq!(path, vec![0, 2, 3]);
    }

    #[test]
    fn wave_parallel_engine_matches_sequential() {
        let seed = |dfs: &Dfs| {
            let rows: Vec<Tuple> =
                (0..200).map(|i| tuple![format!("k{}", i % 13), i as i64]).collect();
            dfs.write_all("/in", &codec::encode_all(&rows)).unwrap();
        };
        let mk_engine = |threads: usize| {
            let dfs = Dfs::new(DfsConfig {
                nodes: 3,
                block_size: 128,
                replication: 1,
                node_capacity: None,
            });
            seed(&dfs);
            Engine::new(
                dfs,
                ClusterConfig::default(),
                EngineConfig { worker_threads: threads, default_reduce_tasks: 2 },
            )
        };
        let wf = diamond();

        // Wave-parallel execution through run_workflow.
        let par = mk_engine(4);
        par.run_workflow(&wf).unwrap();

        // Strictly sequential: one job at a time, in topological order.
        let seq = mk_engine(1);
        for idx in wf.topo_order().unwrap() {
            seq.run(wf.job(idx)).unwrap();
        }

        for path in ["/a", "/b", "/c", "/d"] {
            assert_eq!(
                par.dfs().read_all(path).unwrap(),
                seq.dfs().read_all(path).unwrap(),
                "output {path} diverged between wave-parallel and sequential"
            );
        }
    }

    #[test]
    fn run_workflow_end_to_end() {
        let dfs =
            Dfs::new(DfsConfig { nodes: 3, block_size: 64, replication: 1, node_capacity: None });
        let rows = vec![tuple![1, "x"], tuple![2, "y"]];
        dfs.write_all("/in", &codec::encode_all(&rows)).unwrap();
        let eng = Engine::new(
            dfs.clone(),
            ClusterConfig::default(),
            EngineConfig { worker_threads: 2, default_reduce_tasks: 2 },
        );
        let res = eng.run_workflow(&diamond()).unwrap();
        assert_eq!(res.job_results.len(), 4);
        // Data flowed through the chain unchanged.
        let out = codec::decode_all(&dfs.read_all("/d").unwrap()).unwrap();
        assert_eq!(out, rows);
        assert!(res.total_s > 0.0);
        // Workflow total exceeds every individual job time.
        for jr in &res.job_results {
            assert!(res.total_s >= jr.times.total_s);
        }
        assert_eq!(res.critical_path.first(), Some(&0));
        assert_eq!(res.critical_path.last(), Some(&3));
    }
}
