//! Job specifications.

use crate::task::{MapperFactory, ReducerFactory};
use std::sync::Arc;

/// One input of a job. The index of the input within
/// [`JobSpec::inputs`] is the *tag* mappers and reducers see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobInput {
    pub path: String,
}

impl JobInput {
    pub fn new(path: impl Into<String>) -> Self {
        JobInput { path: path.into() }
    }
}

/// Everything the engine needs to run one MapReduce job.
///
/// `cpu_weight_map` / `cpu_weight_reduce` summarize how expensive the
/// job's physical operators are per record; the dataflow compiler derives
/// them from the plan (Filter is cheap, Join is not) and the cost model
/// multiplies them into the `Σ ET(op_i)` term of Equation (2).
#[derive(Clone)]
pub struct JobSpec {
    /// Human-readable name (shows up in stats and experiment output).
    pub name: String,
    /// Inputs; the position is the tag.
    pub inputs: Vec<JobInput>,
    /// Main output path.
    pub output: String,
    /// Side-output paths (injected Store operators). Channel index is the
    /// position in this vector.
    pub side_outputs: Vec<String>,
    /// Mapper factory.
    pub mapper: Arc<dyn MapperFactory>,
    /// Reducer factory; `None` makes this a map-only job.
    pub reducer: Option<Arc<dyn ReducerFactory>>,
    /// Reduce task count; `None` uses the engine default. Ignored for
    /// map-only jobs.
    pub reduce_tasks: Option<usize>,
    /// Number of distinct shuffle tags mappers may emit. Usually equals
    /// `inputs.len()`, but a map-side Union can funnel several input files
    /// into one join branch, and a self-join can fan one input out to two
    /// branches. `None` defaults to `inputs.len()`.
    pub shuffle_tags: Option<usize>,
    /// Per-record operator CPU weight charged in the map phase.
    pub cpu_weight_map: f64,
    /// Per-record operator CPU weight charged in the reduce phase.
    pub cpu_weight_reduce: f64,
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("inputs", &self.inputs)
            .field("output", &self.output)
            .field("side_outputs", &self.side_outputs)
            .field("map_only", &self.reducer.is_none())
            .finish()
    }
}

impl JobSpec {
    /// Minimal job: one input, one output, identity-style configuration
    /// to be customized by the caller.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<JobInput>,
        output: impl Into<String>,
        mapper: Arc<dyn MapperFactory>,
        reducer: Option<Arc<dyn ReducerFactory>>,
    ) -> Self {
        JobSpec {
            name: name.into(),
            inputs,
            output: output.into(),
            side_outputs: Vec::new(),
            mapper,
            reducer,
            reduce_tasks: None,
            shuffle_tags: None,
            cpu_weight_map: 1.0,
            cpu_weight_reduce: 1.0,
        }
    }

    pub fn is_map_only(&self) -> bool {
        self.reducer.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{IdentityMapper, Mapper};

    #[test]
    fn job_spec_construction() {
        let mapper: Arc<dyn MapperFactory> =
            Arc::new(|| Box::new(IdentityMapper) as Box<dyn Mapper>);
        let job = JobSpec::new("j", vec![JobInput::new("/in")], "/out", mapper, None);
        assert!(job.is_map_only());
        assert_eq!(job.inputs[0].path, "/in");
        let dbg = format!("{job:?}");
        assert!(dbg.contains("map_only: true"));
    }
}
