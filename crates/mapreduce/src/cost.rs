//! Analytical cluster cost model — the paper's Equation (2).
//!
//! `ET(Job) = T_load + Σ ET(op_i) + T_sort + T_store`
//!
//! The model converts measured [`Counters`] of a real in-process execution
//! into modeled seconds on the paper's 15-node testbed. Tasks execute in
//! *waves* limited by slot counts (56 map slots, 28 reduce slots by
//! default); each wave costs the average task time plus scheduling
//! overhead. `byte_scale` maps the scaled-down experiment data back to the
//! paper's data volume; ratios (speedups, overheads) are invariant to it.

use crate::config::ClusterConfig;
use crate::counters::Counters;
use crate::job::JobSpec;

/// Modeled execution times of one job, in seconds, broken down by the
/// terms of Equation (2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JobTimes {
    /// `T_load`: reading input splits from the DFS.
    pub load_s: f64,
    /// `Σ ET(op_i)` charged in the map phase.
    pub map_cpu_s: f64,
    /// Map-side writes: shuffle spill plus injected Store outputs.
    pub map_write_s: f64,
    /// Whole map phase including wave scheduling overhead.
    pub map_phase_s: f64,
    /// `T_sort`: shuffle transfer + merge-sort cost.
    pub sort_s: f64,
    /// `Σ ET(op_i)` charged in the reduce phase.
    pub reduce_cpu_s: f64,
    /// `T_store`: writing the job output (and reduce-side Store outputs).
    pub store_s: f64,
    /// Whole reduce phase including wave scheduling overhead.
    pub reduce_phase_s: f64,
    /// Average single map task time.
    pub avg_map_task_s: f64,
    /// Average single reduce task time.
    pub avg_reduce_task_s: f64,
    /// Map waves executed.
    pub map_waves: u64,
    /// Reduce waves executed.
    pub reduce_waves: u64,
    /// `ET(Job)`: startup + map phase + reduce phase.
    pub total_s: f64,
}

/// The model itself; stateless apart from configuration.
#[derive(Debug, Clone)]
pub struct CostModel {
    cfg: ClusterConfig,
}

impl CostModel {
    pub fn new(cfg: ClusterConfig) -> Self {
        CostModel { cfg }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Model the execution time of a job from its measured counters.
    pub fn job_times(&self, spec: &JobSpec, c: &Counters) -> JobTimes {
        let s = self.cfg.byte_scale;
        let mut t = JobTimes::default();

        // ---- Map phase ----
        let m = c.map_tasks.max(1) as f64;
        t.map_waves = div_ceil(c.map_tasks.max(1), self.cfg.map_slots() as u64);

        let in_bytes = c.map_input_bytes as f64 * s;
        let in_records = c.map_input_records as f64 * s;
        t.load_s = in_bytes / m / self.cfg.disk_read_bps;
        t.map_cpu_s = in_records / m * spec.cpu_weight_map * self.cfg.cpu_per_record_weight;

        // Map-side writes: shuffle spill (written once locally), direct
        // output of map-only jobs (replicated DFS write), injected Stores
        // (at the slower side-store rate).
        let spill = c.map_output_bytes as f64 * s / m;
        let repl = self.cfg.replication as f64;
        let direct_out =
            if c.reduce_tasks == 0 { c.output_bytes as f64 * s * repl / m } else { 0.0 };
        let side_s = c.map_side_bytes as f64 * s / m / self.cfg.side_store_bps;
        t.map_write_s = (spill + direct_out) / self.cfg.disk_write_bps + side_s;

        t.avg_map_task_s = t.load_s + t.map_cpu_s + t.map_write_s;
        t.map_phase_s = t.map_waves as f64 * (t.avg_map_task_s + self.cfg.wave_overhead_s);

        // ---- Reduce phase ----
        if c.reduce_tasks > 0 {
            let r = c.reduce_tasks as f64;
            t.reduce_waves = div_ceil(c.reduce_tasks, self.cfg.reduce_slots() as u64);

            let shuffle_bytes = c.map_output_bytes as f64 * s / r;
            let reduce_records = (c.reduce_input_records as f64 * s / r).max(1.0);
            t.sort_s = shuffle_bytes / self.cfg.shuffle_bps
                + self.cfg.sort_cost_per_byte_log * shuffle_bytes * reduce_records.max(2.0).log2();
            t.reduce_cpu_s = c.reduce_input_records as f64 * s / r
                * spec.cpu_weight_reduce
                * self.cfg.cpu_per_record_weight;
            let out = c.output_bytes as f64 * s * repl / r;
            let side_s = c.reduce_side_bytes as f64 * s / r / self.cfg.side_store_bps;
            t.store_s = out / self.cfg.disk_write_bps + side_s;

            t.avg_reduce_task_s = t.sort_s + t.reduce_cpu_s + t.store_s;
            t.reduce_phase_s =
                t.reduce_waves as f64 * (t.avg_reduce_task_s + self.cfg.wave_overhead_s);
        }

        // Per-side-channel commit cost (extra files created by injected
        // Stores), charged once per job.
        let commit_s = c.side_output_bytes.len() as f64 * self.cfg.side_commit_s;

        t.total_s = self.cfg.job_startup_s + t.map_phase_s + t.reduce_phase_s + commit_s;
        t
    }
}

fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobInput, JobSpec};
    use crate::task::{IdentityMapper, Mapper};
    use std::sync::Arc;

    fn spec() -> JobSpec {
        JobSpec::new(
            "t",
            vec![JobInput::new("/in")],
            "/out",
            Arc::new(|| Box::new(IdentityMapper) as Box<dyn Mapper>),
            None,
        )
    }

    fn cfg() -> ClusterConfig {
        ClusterConfig {
            worker_nodes: 2,
            map_slots_per_node: 2,
            reduce_slots_per_node: 1,
            disk_read_bps: 100.0,
            disk_write_bps: 100.0,
            shuffle_bps: 100.0,
            side_store_bps: 100.0,
            side_commit_s: 0.0,
            cpu_per_record_weight: 0.0,
            sort_cost_per_byte_log: 0.0,
            job_startup_s: 10.0,
            wave_overhead_s: 0.0,
            replication: 1,
            byte_scale: 1.0,
        }
    }

    #[test]
    fn map_only_job_hand_computed() {
        // 4 map tasks over 4 slots = 1 wave; 400 input bytes -> 100/task
        // at 100 B/s = 1 s load; 200 output bytes replicated 1x -> 50/task
        // = 0.5 s write. Total = 10 startup + 1.5 = 11.5 s.
        let c = Counters {
            map_tasks: 4,
            map_input_bytes: 400,
            output_bytes: 200,
            ..Default::default()
        };
        let t = CostModel::new(cfg()).job_times(&spec(), &c);
        assert_eq!(t.map_waves, 1);
        assert!((t.load_s - 1.0).abs() < 1e-9);
        assert!((t.map_write_s - 0.5).abs() < 1e-9);
        assert!((t.total_s - 11.5).abs() < 1e-9);
        assert_eq!(t.reduce_phase_s, 0.0);
    }

    #[test]
    fn waves_scale_with_task_count() {
        // 9 map tasks over 4 slots = 3 waves.
        let c = Counters { map_tasks: 9, map_input_bytes: 900, ..Default::default() };
        let t = CostModel::new(cfg()).job_times(&spec(), &c);
        assert_eq!(t.map_waves, 3);
        // per task: 100 bytes / 100 Bps = 1 s; 3 waves -> 3 s map phase.
        assert!((t.map_phase_s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn reduce_phase_hand_computed() {
        // 2 reduce tasks over 2 slots = 1 wave. Shuffle 200 bytes -> 100
        // per task / 100 Bps = 1 s. Output 100 bytes -> 50/task = 0.5 s.
        let c = Counters {
            map_tasks: 1,
            map_input_bytes: 100,
            map_output_bytes: 200,
            reduce_tasks: 2,
            reduce_input_records: 10,
            output_bytes: 100,
            ..Default::default()
        };
        let t = CostModel::new(cfg()).job_times(&spec(), &c);
        assert_eq!(t.reduce_waves, 1);
        assert!((t.sort_s - 1.0).abs() < 1e-9);
        assert!((t.store_s - 0.5).abs() < 1e-9);
        // total = 10 + (1 load) + (2 spill write... spill=200/1task=2s)
        // avg_map = 1 + 2 = 3; map_phase = 3; reduce_phase = 1.5.
        assert!((t.total_s - 14.5).abs() < 1e-9);
    }

    #[test]
    fn byte_scale_scales_time_linearly_for_io() {
        let c = Counters {
            map_tasks: 1,
            map_input_bytes: 100,
            output_bytes: 100,
            ..Default::default()
        };
        let mut k = cfg();
        k.job_startup_s = 0.0;
        let t1 = CostModel::new(k.clone()).job_times(&spec(), &c);
        k.byte_scale = 10.0;
        let t10 = CostModel::new(k).job_times(&spec(), &c);
        assert!((t10.total_s / t1.total_s - 10.0).abs() < 1e-9);
    }

    #[test]
    fn side_bytes_increase_map_write_time() {
        let base = Counters { map_tasks: 1, map_input_bytes: 100, ..Default::default() };
        let with_side = Counters { map_side_bytes: 500, ..base.clone() };
        let model = CostModel::new(cfg());
        let t0 = model.job_times(&spec(), &base);
        let t1 = model.job_times(&spec(), &with_side);
        assert!(t1.map_write_s > t0.map_write_s);
        assert!(t1.total_s > t0.total_s);
    }

    #[test]
    fn side_channels_pay_commit_cost() {
        let mut k = cfg();
        k.side_commit_s = 7.0;
        let base = Counters { map_tasks: 1, map_input_bytes: 100, ..Default::default() };
        let with_channels = Counters { side_output_bytes: vec![0, 0], ..base.clone() };
        let model = CostModel::new(k);
        let t0 = model.job_times(&spec(), &base);
        let t1 = model.job_times(&spec(), &with_channels);
        assert!((t1.total_s - t0.total_s - 14.0).abs() < 1e-9);
    }

    #[test]
    fn side_store_rate_is_separate_from_main_write() {
        let mut k = cfg();
        k.side_store_bps = 10.0; // 10x slower than main writes
        let c = Counters {
            map_tasks: 1,
            map_input_bytes: 100,
            map_side_bytes: 100,
            ..Default::default()
        };
        let t = CostModel::new(k).job_times(&spec(), &c);
        // 100 bytes at 10 B/s = 10 s of side-store write time.
        assert!((t.map_write_s - 10.0).abs() < 1e-9);
    }

    #[test]
    fn replication_multiplies_store_cost() {
        let c = Counters {
            map_tasks: 1,
            map_input_bytes: 100,
            output_bytes: 100,
            ..Default::default()
        };
        let mut k = cfg();
        k.replication = 3;
        let t3 = CostModel::new(k).job_times(&spec(), &c);
        let t1 = CostModel::new(cfg()).job_times(&spec(), &c);
        assert!((t3.map_write_s / t1.map_write_s - 3.0).abs() < 1e-9);
    }
}
