//! Property-based tests of the cluster cost model and Equation (1)
//! workflow totals: monotonicity, scaling, and wave arithmetic.

use proptest::prelude::*;
use restore_mapreduce::{ClusterConfig, CostModel, Counters, JobInput, JobSpec};
use std::sync::Arc;

fn spec() -> JobSpec {
    use restore_mapreduce::{MapContext, Mapper};
    struct Nop;
    impl Mapper for Nop {
        fn map(
            &mut self,
            _tag: usize,
            _r: restore_common::Tuple,
            _ctx: &mut MapContext,
        ) -> restore_common::Result<()> {
            Ok(())
        }
    }
    JobSpec::new(
        "p",
        vec![JobInput::new("/in")],
        "/out",
        Arc::new(|| Box::new(Nop) as Box<dyn Mapper>),
        None,
    )
}

fn counters() -> impl Strategy<Value = Counters> {
    (
        1u64..5000,      // map tasks
        0u64..1 << 30,   // map input bytes
        0u64..1 << 28,   // map output bytes
        0u64..64,        // reduce tasks
        0u64..1 << 26,   // output bytes
        0u64..1 << 26,   // map side bytes
        0u64..1_000_000, // records
    )
        .prop_map(|(m, mib, mob, r, ob, msb, rec)| Counters {
            map_tasks: m,
            map_input_bytes: mib,
            map_output_bytes: mob,
            reduce_tasks: r,
            reduce_input_records: if r > 0 { rec } else { 0 },
            map_input_records: rec,
            output_bytes: ob,
            map_side_bytes: if m > 0 { msb } else { 0 },
            ..Default::default()
        })
}

proptest! {
    /// Times are finite, non-negative, and at least the startup cost.
    #[test]
    fn times_are_sane(c in counters()) {
        let model = CostModel::new(ClusterConfig::default());
        let t = model.job_times(&spec(), &c);
        prop_assert!(t.total_s.is_finite());
        prop_assert!(t.total_s >= model.config().job_startup_s);
        prop_assert!(t.map_phase_s >= 0.0);
        prop_assert!(t.reduce_phase_s >= 0.0);
        if c.reduce_tasks == 0 {
            prop_assert_eq!(t.reduce_phase_s, 0.0);
        }
    }

    /// More input bytes never makes a job faster (same task layout).
    #[test]
    fn more_input_never_faster(c in counters(), extra in 1u64..1 << 24) {
        let model = CostModel::new(ClusterConfig::default());
        let t0 = model.job_times(&spec(), &c);
        let mut c2 = c.clone();
        c2.map_input_bytes += extra;
        let t1 = model.job_times(&spec(), &c2);
        prop_assert!(t1.total_s >= t0.total_s - 1e-9);
    }

    /// Injected side-store bytes never make a job faster.
    #[test]
    fn side_stores_cost(c in counters(), extra in 1u64..1 << 24) {
        let model = CostModel::new(ClusterConfig::default());
        let t0 = model.job_times(&spec(), &c);
        let mut c2 = c.clone();
        c2.map_side_bytes += extra;
        let t1 = model.job_times(&spec(), &c2);
        prop_assert!(t1.total_s >= t0.total_s);
    }

    /// Wave count is the exact ceiling of tasks over slots.
    #[test]
    fn waves_are_ceilings(tasks in 1u64..10_000) {
        let cfg = ClusterConfig::default();
        let slots = cfg.map_slots() as u64;
        let model = CostModel::new(cfg);
        let c = Counters { map_tasks: tasks, ..Default::default() };
        let t = model.job_times(&spec(), &c);
        prop_assert_eq!(t.map_waves, tasks.div_ceil(slots));
    }

    /// Doubling byte_scale doubles IO-bound time (startup removed, CPU
    /// and wave overhead zeroed).
    #[test]
    fn byte_scale_is_linear_for_io(c in counters(), scale in 1.0f64..1000.0) {
        let cfg = ClusterConfig {
            job_startup_s: 0.0,
            wave_overhead_s: 0.0,
            cpu_per_record_weight: 0.0,
            sort_cost_per_byte_log: 0.0,
            side_commit_s: 0.0,
            ..Default::default()
        };
        let cfg2 = ClusterConfig { byte_scale: scale, ..cfg.clone() };
        let t1 = CostModel::new(cfg).job_times(&spec(), &c);
        let t2 = CostModel::new(cfg2).job_times(&spec(), &c);
        if t1.total_s > 1e-9 {
            let ratio = t2.total_s / t1.total_s;
            prop_assert!((ratio - scale).abs() / scale < 1e-6, "ratio {ratio} vs {scale}");
        }
    }

    /// Equation (1) totals on random DAGs: the workflow total is at least
    /// the longest job and at most the serial sum, and every job's total
    /// is its own time plus the max of its dependencies' totals.
    #[test]
    fn equation_one_bounds(
        et in prop::collection::vec(0.1f64..100.0, 1..10),
        edges in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..15),
    ) {
        use restore_mapreduce::Workflow;
        use restore_mapreduce::{MapContext, Mapper};
        struct Nop;
        impl Mapper for Nop {
            fn map(&mut self, _t: usize, _r: restore_common::Tuple, _c: &mut MapContext)
                -> restore_common::Result<()> { Ok(()) }
        }
        let n = et.len();
        let mut wf = Workflow::new();
        for i in 0..n {
            wf.add_job(JobSpec::new(
                format!("j{i}"),
                vec![JobInput::new("/in")],
                format!("/out{i}"),
                Arc::new(|| Box::new(Nop) as Box<dyn Mapper>),
                None,
            ));
        }
        // Only forward edges (lower index -> higher) keep the DAG acyclic.
        for (a, b) in edges {
            let (x, y) = (a.index(n), b.index(n));
            if x < y {
                wf.add_dependency(y, x);
            }
        }
        let (totals, total, path) = wf.total_times(&et).unwrap();
        let max_et = et.iter().cloned().fold(0.0f64, f64::max);
        let sum_et: f64 = et.iter().sum();
        prop_assert!(total >= max_et - 1e-9);
        prop_assert!(total <= sum_et + 1e-9);
        for i in 0..n {
            let dep_max = wf
                .dependencies(i)
                .iter()
                .map(|&d| totals[d])
                .fold(0.0f64, f64::max);
            prop_assert!((totals[i] - (et[i] + dep_max)).abs() < 1e-9);
        }
        // The critical path is a real dependency chain ending at the max.
        prop_assert!((totals[*path.last().unwrap()] - total).abs() < 1e-9);
        for w in path.windows(2) {
            prop_assert!(wf.dependencies(w[1]).contains(&w[0]));
        }
    }
}
