//! Failure injection: corrupt records, vanishing inputs, capacity
//! exhaustion, and mapper/reducer errors must surface as errors — never
//! panics, hangs, or silent truncation.

use restore_common::{codec, tuple, Error, Result, Tuple};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{
    ClusterConfig, Engine, EngineConfig, JobInput, JobSpec, MapContext, Mapper, ReduceContext,
    Reducer,
};
use std::sync::Arc;

fn engine(dfs: Dfs) -> Engine {
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 3, default_reduce_tasks: 2 },
    )
}

struct KeyFirst;
impl Mapper for KeyFirst {
    fn map(&mut self, tag: usize, r: Tuple, ctx: &mut MapContext) -> Result<()> {
        ctx.emit(Tuple::from_values(vec![r.get(0).clone()]), tag, r);
        Ok(())
    }
}

struct CountRed;
impl Reducer for CountRed {
    fn reduce(&mut self, key: &Tuple, bags: &[Vec<Tuple>], ctx: &mut ReduceContext) -> Result<()> {
        ctx.output(Tuple::from_values(vec![key.get(0).clone(), (bags[0].len() as i64).into()]));
        Ok(())
    }
}

fn job(input: &str, output: &str) -> JobSpec {
    JobSpec::new(
        "j",
        vec![JobInput::new(input)],
        output,
        Arc::new(|| Box::new(KeyFirst) as Box<dyn Mapper>),
        Some(Arc::new(|| Box::new(CountRed) as Box<dyn Reducer>)),
    )
}

#[test]
fn corrupt_records_fail_the_job_cleanly() {
    let dfs = Dfs::new(DfsConfig::small_for_tests());
    // A dangling escape is invalid under the codec.
    dfs.write_all("/in", b"good\t1\nbad\\").unwrap();
    let err = engine(dfs).run(&job("/in", "/out")).unwrap_err();
    assert!(matches!(err, Error::Codec(_)), "{err}");
}

#[test]
fn mapper_errors_propagate() {
    struct Exploding;
    impl Mapper for Exploding {
        fn map(&mut self, _t: usize, r: Tuple, _c: &mut MapContext) -> Result<()> {
            if r.get(0).as_i64() == Some(13) {
                return Err(Error::Eval("unlucky record".into()));
            }
            Ok(())
        }
    }
    let dfs = Dfs::new(DfsConfig::small_for_tests());
    let rows: Vec<Tuple> = (0..50).map(|i| tuple![i]).collect();
    dfs.write_all("/in", &codec::encode_all(&rows)).unwrap();
    let spec = JobSpec::new(
        "explode",
        vec![JobInput::new("/in")],
        "/out",
        Arc::new(|| Box::new(Exploding) as Box<dyn Mapper>),
        None,
    );
    let err = engine(dfs).run(&spec).unwrap_err();
    assert!(err.to_string().contains("unlucky"), "{err}");
}

#[test]
fn reducer_errors_propagate() {
    struct BadReduce;
    impl Reducer for BadReduce {
        fn reduce(&mut self, _k: &Tuple, _b: &[Vec<Tuple>], _c: &mut ReduceContext) -> Result<()> {
            Err(Error::Eval("reduce failed".into()))
        }
    }
    let dfs = Dfs::new(DfsConfig::small_for_tests());
    dfs.write_all("/in", &codec::encode_all(&[tuple!["k", 1]])).unwrap();
    let spec = JobSpec::new(
        "badred",
        vec![JobInput::new("/in")],
        "/out",
        Arc::new(|| Box::new(KeyFirst) as Box<dyn Mapper>),
        Some(Arc::new(|| Box::new(BadReduce) as Box<dyn Reducer>)),
    );
    let err = engine(dfs).run(&spec).unwrap_err();
    assert!(err.to_string().contains("reduce failed"), "{err}");
    // The failed job must not have committed its output.
    // (Output commit happens after all phases succeed.)
}

#[test]
fn failed_job_commits_no_output() {
    struct Exploding;
    impl Mapper for Exploding {
        fn map(&mut self, _t: usize, _r: Tuple, _c: &mut MapContext) -> Result<()> {
            Err(Error::Eval("boom".into()))
        }
    }
    let dfs = Dfs::new(DfsConfig::small_for_tests());
    dfs.write_all("/in", &codec::encode_all(&[tuple![1]])).unwrap();
    let eng = engine(dfs);
    let spec = JobSpec::new(
        "boom",
        vec![JobInput::new("/in")],
        "/out/never",
        Arc::new(|| Box::new(Exploding) as Box<dyn Mapper>),
        None,
    );
    assert!(eng.run(&spec).is_err());
    assert!(!eng.dfs().exists("/out/never"));
}

#[test]
fn out_of_capacity_fails_the_write() {
    let dfs =
        Dfs::new(DfsConfig { nodes: 2, block_size: 64, replication: 2, node_capacity: Some(400) });
    let rows: Vec<Tuple> = (0..40).map(|i| tuple![i, "data"]).collect();
    dfs.write_all("/in", &codec::encode_all(&rows)).unwrap();
    // The job output (plus shuffle-free identity copy) exceeds capacity.
    struct Amplify;
    impl Mapper for Amplify {
        fn map(&mut self, _t: usize, r: Tuple, ctx: &mut MapContext) -> Result<()> {
            for _ in 0..50 {
                ctx.output(r.clone());
            }
            Ok(())
        }
    }
    let eng = engine(dfs);
    let spec = JobSpec::new(
        "amp",
        vec![JobInput::new("/in")],
        "/out/amp",
        Arc::new(|| Box::new(Amplify) as Box<dyn Mapper>),
        None,
    );
    let err = eng.run(&spec).unwrap_err();
    assert!(matches!(err, Error::OutOfStorage { .. }), "{err}");
}

#[test]
fn workflow_stops_at_first_failed_job() {
    use restore_mapreduce::Workflow;
    let dfs = Dfs::new(DfsConfig::small_for_tests());
    dfs.write_all("/in", &codec::encode_all(&[tuple!["k", 1]])).unwrap();
    let eng = engine(dfs);
    let mut wf = Workflow::new();
    let ok = wf.add_job(job("/in", "/mid"));
    // Second job reads a file the first never produces (wrong path).
    let bad = wf.add_job(job("/missing", "/out"));
    wf.add_dependency(bad, ok);
    let err = eng.run_workflow(&wf).unwrap_err();
    assert!(matches!(err, Error::FileNotFound(_)), "{err}");
    // First job's output committed; second never ran.
    assert!(eng.dfs().exists("/mid"));
    assert!(!eng.dfs().exists("/out"));
}
