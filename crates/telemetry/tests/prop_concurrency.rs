//! Concurrent recording is exact: relaxed ordering on the stripes and
//! buckets never loses an update, because every record is an atomic RMW
//! and totals are read at quiescence (after thread join, which gives
//! the happens-before edge the relaxed stores themselves don't).

use proptest::prelude::*;
use restore_telemetry::{Counter, Histogram};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn concurrent_counter_and_histogram_totals_are_exact(
        threads in 1usize..9,
        per_thread in 1usize..1200,
        values in prop::collection::vec(0u64..1_000_000, 1..16),
    ) {
        let counter = Counter::default();
        let hist = Histogram::with_scale(1.0);
        std::thread::scope(|s| {
            for t in 0..threads {
                let counter = counter.clone();
                let hist = hist.clone();
                let values = values.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        counter.inc();
                        hist.record(values[(t + i) % values.len()]);
                    }
                });
            }
        });
        let n = (threads * per_thread) as u64;
        prop_assert_eq!(counter.get(), n);
        prop_assert_eq!(hist.count(), n, "count derives from buckets, must equal records");
        let mut expected_sum = 0u64;
        for t in 0..threads {
            for i in 0..per_thread {
                expected_sum += values[(t + i) % values.len()];
            }
        }
        prop_assert_eq!(hist.sum_raw(), expected_sum);
        // The cumulative +Inf bucket equals the count by construction.
        let buckets: u64 = hist.bucket_counts().iter().sum();
        prop_assert_eq!(buckets, n);
    }
}
