//! Pins the Prometheus text exposition format byte-for-byte: family
//! ordering, HELP/TYPE headers, label blocks, cumulative histogram
//! buckets with trailing-empty elision, the `le` splice into existing
//! label blocks, and integer-vs-float value formatting. Any render
//! change must update this snapshot deliberately.

use restore_telemetry::Registry;

#[test]
fn exposition_format_snapshot() {
    let r = Registry::new();

    let hits_a = r.counter("demo_hits_total", "Match hits", &[("tenant", "a")]);
    hits_a.add(3);
    let _hits_b = r.counter("demo_hits_total", "Match hits", &[("tenant", "b")]);

    let lat = r.histogram("demo_latency", "Latency", &[], 1.0);
    lat.record(1);
    lat.record(2);
    lat.record(1000);

    let labeled = r.histogram("demo_match", "Labeled latency", &[("tenant", "t")], 1.0);
    labeled.record(5);

    let depth = r.gauge("demo_queue_depth", "Queue depth", &[]);
    depth.set(2.5);

    let expected = "\
# HELP demo_hits_total Match hits
# TYPE demo_hits_total counter
demo_hits_total{tenant=\"a\"} 3
demo_hits_total{tenant=\"b\"} 0
# HELP demo_latency Latency
# TYPE demo_latency histogram
demo_latency_bucket{le=\"1\"} 1
demo_latency_bucket{le=\"3\"} 2
demo_latency_bucket{le=\"7\"} 2
demo_latency_bucket{le=\"15\"} 2
demo_latency_bucket{le=\"31\"} 2
demo_latency_bucket{le=\"63\"} 2
demo_latency_bucket{le=\"127\"} 2
demo_latency_bucket{le=\"255\"} 2
demo_latency_bucket{le=\"511\"} 2
demo_latency_bucket{le=\"1023\"} 3
demo_latency_bucket{le=\"+Inf\"} 3
demo_latency_sum 1003
demo_latency_count 3
# HELP demo_match Labeled latency
# TYPE demo_match histogram
demo_match_bucket{tenant=\"t\",le=\"1\"} 0
demo_match_bucket{tenant=\"t\",le=\"3\"} 0
demo_match_bucket{tenant=\"t\",le=\"7\"} 1
demo_match_bucket{tenant=\"t\",le=\"+Inf\"} 1
demo_match_sum{tenant=\"t\"} 5
demo_match_count{tenant=\"t\"} 1
# HELP demo_queue_depth Queue depth
# TYPE demo_queue_depth gauge
demo_queue_depth 2.5
";
    assert_eq!(r.render(), expected);
}
