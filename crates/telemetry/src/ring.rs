//! A bounded FIFO ring of structured trace events.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Bounded event ring: pushing beyond capacity drops the oldest
/// events. Writers batch — the driver pushes one job's worth of reuse
/// decisions in a single [`TraceRing::extend`] — so the mutex is taken
/// once per job, never once per event, and never inside the lock-free
/// match probe itself.
pub struct TraceRing<T> {
    cap: usize,
    inner: Mutex<VecDeque<T>>,
}

impl<T: Clone> TraceRing<T> {
    pub fn new(cap: usize) -> Self {
        TraceRing { cap: cap.max(1), inner: Mutex::new(VecDeque::new()) }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn push(&self, event: T) {
        self.extend(std::iter::once(event));
    }

    /// Append a batch, evicting from the front to stay within capacity.
    pub fn extend(&self, events: impl IntoIterator<Item = T>) {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for e in events {
            if q.len() == self.cap {
                q.pop_front();
            }
            q.push_back(e);
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out the current contents, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect()
    }

    /// Copy out the events matching `pred`, oldest first.
    pub fn snapshot_filtered(&self, pred: impl Fn(&T) -> bool) -> Vec<T> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|e| pred(e))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let r = TraceRing::new(3);
        r.extend([1, 2, 3, 4, 5]);
        assert_eq!(r.snapshot(), vec![3, 4, 5]);
        r.push(6);
        assert_eq!(r.snapshot(), vec![4, 5, 6]);
        assert_eq!(r.len(), 3);
    }
}
