//! # restore-telemetry
//!
//! A dependency-free observability core, hand-rolled like
//! `restore_core::rcu` because the build environment is fully offline:
//! no `prometheus`, no `metrics`, no `tracing`.
//!
//! Three pieces:
//!
//! * **Metric primitives** ([`Counter`], [`Gauge`], [`Histogram`]) whose
//!   hot-path record is a relaxed `fetch_add` on a cache-line-padded
//!   stripe — no lock, no CAS loop, no snapshot publication — so
//!   instrumenting a write-free path (e.g. the §3 match loop) keeps it
//!   write-free in the RCU sense: the publish counter never moves.
//! * **A registry** ([`Registry`]) of named, labeled metric families
//!   that renders the whole set in Prometheus text exposition format
//!   ([`Registry::render`]). Handles are resolved once (a short mutex
//!   section) and recorded through forever after; the registry lock is
//!   never on a per-record path.
//! * **A trace ring** ([`TraceRing`]) — a bounded FIFO of structured
//!   events for "why did this decision happen" introspection, pushed
//!   in per-job batches so the hot loop takes its mutex once per job,
//!   not once per event.
//!
//! ## Why relaxed ordering is sound
//!
//! Every metric is an independent monotone accumulator: no reader
//! derives a happens-before edge from a metric value, and no metric
//! guards any other data. Atomic RMW (`fetch_add`) never loses an
//! update regardless of ordering, so totals are exact once the writing
//! threads are quiescent (joined threads synchronize with the reader
//! through the join itself). Mid-flight readers may observe metrics
//! slightly out of sync with one another — acceptable for monitoring,
//! and exactly the trade that keeps recording off the coherence
//! critical path.

mod metrics;
mod registry;
mod ring;

pub use metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use registry::Registry;
pub use ring::TraceRing;
