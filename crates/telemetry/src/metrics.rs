//! The metric primitives: striped counters, float gauges, and
//! log-bucketed histograms. All handles are cheap `Arc` clones of a
//! shared core, so a handle resolved from the registry at setup time
//! records with no further lookups.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Stripes per counter/histogram-sum. Enough that 8–16 recording
/// threads rarely share a stripe, small enough that a counter is one
/// kilobyte.
const STRIPES: usize = 16;

/// One cache line per stripe: two threads on different stripes never
/// bounce a line between cores (same idiom as the padded epoch slots
/// in `restore_core::rcu`).
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Round-robin stripe assignment: each recording thread gets a stable
/// stripe index the first time it records anything.
fn stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

#[derive(Default)]
struct Stripes([PaddedU64; STRIPES]);

impl Stripes {
    #[inline]
    fn add(&self, n: u64) {
        self.0[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    fn total(&self) -> u64 {
        self.0.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A monotone counter. `add` is a single relaxed `fetch_add` on the
/// calling thread's stripe; `get` sums the stripes.
#[derive(Clone, Default)]
pub struct Counter {
    core: Arc<Stripes>,
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.core.add(n);
    }

    pub fn get(&self) -> u64 {
        self.core.total()
    }
}

/// A last-value gauge holding an `f64` (stored as bits in one atomic).
/// Gauges are set at collection time, not on hot paths, so a plain
/// `store` is all they need.
#[derive(Clone)]
pub struct Gauge {
    core: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { core: Arc::new(AtomicU64::new(0f64.to_bits())) }
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.core.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.core.load(Ordering::Relaxed))
    }
}

/// Log-bucketed histogram buckets: bucket `i` counts recorded values
/// `v` with `floor(log2(max(v, 1))) == i`, i.e. `v ≤ 2^(i+1) - 1`.
/// 44 buckets cover 1ns .. ~17.6s of nanosecond timings; larger values
/// clamp into the last bucket (rendered as `+Inf` cumulative anyway).
pub const HISTOGRAM_BUCKETS: usize = 44;

struct HistogramCore {
    /// Per-bucket counts. Not striped: distinct values land on distinct
    /// buckets, and a histogram records orders of magnitude less often
    /// than a hit counter increments.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Striped running sum of raw recorded values.
    sum: Stripes,
    /// Multiplier applied to bucket bounds and the sum at render time
    /// (1e-9 turns recorded nanoseconds into exposition seconds).
    scale: f64,
}

/// A log-bucketed histogram. `record` is two relaxed `fetch_add`s (the
/// bucket count and the striped sum) — constant-time, lock-free, and
/// publication-free, which is what lets the §3 match path carry one.
/// The observation count is derived from the buckets at read time, so
/// `count == Σ bucket` holds by construction.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::with_scale(1e-9)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={}, sum_raw={})", self.count(), self.sum_raw())
    }
}

impl Histogram {
    /// A histogram whose rendered bounds/sum are `raw × scale`.
    pub fn with_scale(scale: f64) -> Self {
        Histogram {
            core: Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: Stripes::default(),
                scale,
            }),
        }
    }

    #[inline]
    fn bucket_index(v: u64) -> usize {
        (63 - v.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Record one raw value (nanoseconds, by convention, for timings).
    #[inline]
    pub fn record(&self, v: u64) {
        self.core.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.sum.add(v);
    }

    /// Record the elapsed time of a span started at `t0`.
    #[inline]
    pub fn record_elapsed(&self, t0: Instant) {
        self.record(t0.elapsed().as_nanos() as u64);
    }

    /// Time `f` and record its duration.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.record_elapsed(t0);
        out
    }

    /// Observation count (sum of the buckets).
    pub fn count(&self) -> u64 {
        self.core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of raw recorded values (unscaled).
    pub fn sum_raw(&self) -> u64 {
        self.core.sum.total()
    }

    /// The render-time scale factor.
    pub fn scale(&self) -> f64 {
        self.core.scale
    }

    /// Per-bucket counts (non-cumulative), for rendering and tests.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.core.buckets[i].load(Ordering::Relaxed))
    }

    /// Scaled upper bound of bucket `i` (inclusive, `2^(i+1) - 1` raw).
    pub fn bucket_bound(&self, i: usize) -> f64 {
        ((1u64 << (i + 1)) - 1) as f64 * self.core.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_stripes_and_threads() {
        let c = Counter::default();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let b = h.bucket_counts();
        assert_eq!(b[0], 2, "0 and 1 share the first bucket");
        assert_eq!(b[1], 2, "2 and 3");
        assert_eq!(b[2], 1, "4");
        assert_eq!(b[9], 1, "1023");
        assert_eq!(b[10], 1, "1024");
        assert_eq!(b[HISTOGRAM_BUCKETS - 1], 1, "huge values clamp to the last bucket");
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn gauge_round_trips_floats() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(0.625);
        assert_eq!(g.get(), 0.625);
        g.set(-3.0);
        assert_eq!(g.get(), -3.0);
    }
}
