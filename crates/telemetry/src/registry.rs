//! The metric registry: named, labeled families rendered in Prometheus
//! text exposition format.
//!
//! Resolution (`counter`/`gauge`/`histogram`) takes a short mutex
//! section and returns a clonable handle; callers resolve once at
//! construction and record lock-free thereafter. Families and series
//! live in `BTreeMap`s so [`Registry::render`] output is sorted and
//! byte-stable — the exposition snapshot test pins it.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Series {
    fn kind(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    help: String,
    /// Series keyed by their rendered `{label="value",...}` block
    /// (empty string = no labels).
    series: BTreeMap<String, Series>,
}

/// A registry of metric families. Create one per system instance and
/// thread `Arc<Registry>` through the layers that register metrics.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Escape a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Render a label set as `{k="v",...}`, empty string for no labels.
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", body.join(","))
}

/// Format a float the way the exposition format expects: integers
/// without a trailing `.0`, everything else via shortest-round-trip.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
        pick: impl Fn(&Series) -> Option<T>,
    ) -> T {
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), series: BTreeMap::new() });
        let series = family.series.entry(label_block(labels)).or_insert_with(make);
        pick(series)
            .unwrap_or_else(|| panic!("metric {name} already registered as a {}", series.kind()))
    }

    /// Resolve (or create) a counter series. Counters should be named
    /// `*_total` per Prometheus convention; the registry does not
    /// rename.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.get_or_insert(
            name,
            help,
            labels,
            || Series::Counter(Counter::default()),
            |s| match s {
                Series::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Resolve (or create) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.get_or_insert(
            name,
            help,
            labels,
            || Series::Gauge(Gauge::default()),
            |s| match s {
                Series::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Resolve (or create) a histogram series recording raw values that
    /// render scaled by `scale` (use `1e-9` for nanosecond timings
    /// rendered as seconds, `1.0` for dimensionless values).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        scale: f64,
    ) -> Histogram {
        self.get_or_insert(
            name,
            help,
            labels,
            || Series::Histogram(Histogram::with_scale(scale)),
            |s| match s {
                Series::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// `(label block, observation count, raw sum)` per series of a
    /// histogram family — the structured read path benchmarks use to
    /// report stage means without parsing exposition text.
    pub fn histogram_stats(&self, name: &str) -> Vec<(String, u64, u64)> {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let Some(family) = families.get(name) else {
            return Vec::new();
        };
        family
            .series
            .iter()
            .filter_map(|(labels, s)| match s {
                Series::Histogram(h) => Some((labels.clone(), h.count(), h.sum_raw())),
                _ => None,
            })
            .collect()
    }

    /// Render every family in Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, histograms with cumulative
    /// `_bucket{le=...}` plus `_sum` and `_count`). Families and series
    /// render in sorted order, so equal registry contents render to
    /// equal bytes.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, family) in families.iter() {
            let kind = match family.series.values().next() {
                Some(s) => s.kind(),
                None => continue,
            };
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, series) in family.series.iter() {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", fmt_value(g.get()));
                    }
                    Series::Histogram(h) => {
                        render_histogram(&mut out, name, labels, h);
                    }
                }
            }
        }
        out
    }
}

/// One histogram series: cumulative buckets up to the last non-empty
/// one, the `+Inf` bucket, then `_sum` and `_count`. Trailing empty
/// buckets are elided (the cumulative `+Inf` line carries their
/// information), which keeps a 44-bucket histogram's exposition
/// readable.
fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let counts = h.bucket_counts();
    let last = counts.iter().rposition(|&c| c > 0).map(|i| i + 1).unwrap_or(0);
    // Splice `le` into a possibly-present label block.
    let with_le = |le: &str| {
        if labels.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
        }
    };
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate().take(last) {
        cum += c;
        let _ = writeln!(out, "{name}_bucket{} {cum}", with_le(&format!("{}", h.bucket_bound(i))));
    }
    let total: u64 = counts.iter().sum();
    let _ = writeln!(out, "{name}_bucket{} {total}", with_le("+Inf"));
    let _ = writeln!(out, "{name}_sum{labels} {}", h.sum_raw() as f64 * h.scale());
    let _ = writeln!(out, "{name}_count{labels} {total}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolving_twice_returns_the_same_series() {
        let r = Registry::new();
        let a = r.counter("x_total", "x", &[("t", "a")]);
        let b = r.counter("x_total", "x", &[("t", "a")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x", "x", &[]);
        let _ = r.gauge("x", "x", &[]);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        let _ = r.counter("c_total", "c", &[("q", "a\"b\\c\nd")]);
        assert!(r.render().contains("c_total{q=\"a\\\"b\\\\c\\nd\"} 0"));
    }
}
