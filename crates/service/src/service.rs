//! The service object: admission control, the worker pool, and
//! introspection.

use crate::failure::{Admission, FaultInjector, TenantFailureState};
use crate::obs::ServiceObs;
use crate::scheduler::{next_ready_deadline, pick, tenant_key, QueuedWorkflow, SchedulerState};
use crate::ticket::{SubmitHandle, Ticket};
use crate::ServiceError;
use restore_core::{
    FailureDisposition, JournalConfig, ReStore, ReStoreStats, RecoveryReport, ReplicationError,
    ReplicationTransport, Replicator, ReuseTraceEvent,
};
use restore_dataflow::CompiledWorkflow;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Fixed worker-pool size (minimum 1).
    pub workers: usize,
    /// Bound of the submission queue; a full queue sheds new work with
    /// [`ServiceError::Overloaded`].
    pub queue_depth: usize,
    /// Maximum workflows one tenant may have queued + running; beyond it
    /// submissions are rejected with [`ServiceError::TenantOverloaded`].
    pub max_inflight_per_tenant: usize,
    /// Overlap queued workflows with disjoint DFS footprints. Disabling
    /// reverts to strict FIFO dispatch (still pipelined across workers
    /// when consecutive submissions are disjoint).
    pub cross_workflow: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_depth: 64,
            max_inflight_per_tenant: 16,
            cross_workflow: true,
        }
    }
}

/// Tuning for continuous incremental checkpointing (see
/// [`RestoreService::checkpoint_begin`]).
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Journal segment size bound (see [`JournalConfig`]).
    pub segment_bytes: usize,
    /// Compact (fold the journal into a fresh base checkpoint) once
    /// accumulated segment bytes exceed this fraction of the base's
    /// size. Compaction uses the quiesce-free driver dump, so even the
    /// fold never drains in-flight workflows.
    pub compact_ratio: f64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig { segment_bytes: 64 * 1024, compact_ratio: 0.5 }
    }
}

/// What one [`RestoreService::checkpoint_incremental`] call captured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointOutcome {
    /// Segments this capture added to the checkpoint set.
    pub segments_added: usize,
    /// The journal was folded into a fresh base this round.
    pub compacted: bool,
    /// Current base checkpoint size, bytes.
    pub base_bytes: usize,
    /// Accumulated journal bytes riding on the base.
    pub journal_bytes: usize,
}

/// A recoverable checkpoint: the base dump plus the journal segments
/// captured since. Persist both; rebuild with
/// [`RestoreService::restore_incremental`] (or
/// [`ReStore::recover`](restore_core::ReStore::recover) on a bare
/// driver).
#[derive(Debug, Clone)]
pub struct CheckpointSet {
    pub base: String,
    pub segments: Vec<String>,
}

/// Continuous-checkpoint bookkeeping (see
/// [`RestoreService::checkpoint_begin`]).
struct CheckpointKeeper {
    config: CheckpointConfig,
    base: String,
    segments: Vec<String>,
    journal_bytes: usize,
    compactions: u64,
}

/// Snapshot of one tenant's serving activity (see
/// [`RestoreService::stats`]).
#[derive(Debug, Clone)]
pub struct TenantServiceStats {
    /// Tenant name; empty string = the default namespace.
    pub tenant: String,
    pub submitted: u64,
    pub completed: u64,
    pub rejected: u64,
    /// Workflows currently queued or running for this tenant.
    pub inflight: usize,
    /// The tenant's repository, as the driver reports it.
    pub repository: ReStoreStats,
}

/// Point-in-time service introspection.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    pub workers: usize,
    pub queued: usize,
    pub running: usize,
    pub submitted: u64,
    pub completed: u64,
    pub rejected: u64,
    /// Per-tenant breakdown, sorted by tenant name.
    pub tenants: Vec<TenantServiceStats>,
}

struct Shared {
    state: Mutex<SchedulerState>,
    /// Workers wait here for runnable queue entries.
    work: Condvar,
    /// `drain` waiters park here until queue and in-flight are empty.
    idle: Condvar,
    /// Deterministic fault injection on the execution path (see
    /// [`FaultInjector`]); `None` in production.
    fault: Mutex<Option<Arc<dyn FaultInjector>>>,
}

/// Attached standby links (see [`RestoreService::attach_standby`]).
/// Workers pump every link after each completed workflow, so the ship
/// cadence tracks the mutation rate without a dedicated timer thread.
#[derive(Default)]
struct ReplicationHub {
    replicators: Mutex<Vec<Replicator>>,
}

impl ReplicationHub {
    /// Cheap empty probe so the per-completion pump costs one lock-free
    /// branch when no standby is attached.
    fn attached(&self) -> usize {
        self.replicators.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// One shipping beat on every attached link; links whose transport
    /// closed (the standby promoted or went away) are detached — their
    /// journal tap goes with them.
    fn pump_all(&self) {
        let mut reps = self.replicators.lock().unwrap_or_else(|e| e.into_inner());
        reps.retain(|r| !matches!(r.pump(), Err(ReplicationError::Disconnected)));
    }
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, SchedulerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The query-submission service. Owns a [`ReStore`] session and a fixed
/// pool of worker threads; see the crate docs for the architecture.
pub struct RestoreService {
    restore: Arc<ReStore>,
    config: ServiceConfig,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes quiesced admin operations (`snapshot`, `restore`):
    /// two quiescers overlapping would both observe an idle pool and
    /// run their critical sections — e.g. a restore swapping state
    /// mid-snapshot — so only one may hold the pool quiesced at a time.
    quiesce: Mutex<()>,
    /// Continuous-checkpoint state; `None` until
    /// [`RestoreService::checkpoint_begin`].
    checkpoint: Mutex<Option<CheckpointKeeper>>,
    /// Warm-standby links; empty until
    /// [`RestoreService::attach_standby`].
    replication: Arc<ReplicationHub>,
    /// Serving-pipeline instruments, registered in the driver session's
    /// registry (see [`crate::obs`]). Crate-visible so the dead-letter
    /// surface (see [`crate::dlq`]) counts redrives.
    pub(crate) obs: Arc<ServiceObs>,
}

impl RestoreService {
    /// Start the service over a fresh driver session.
    pub fn new(restore: ReStore, config: ServiceConfig) -> Self {
        Self::over(Arc::new(restore), config)
    }

    /// Start the service over an existing (possibly shared) session.
    pub fn over(restore: Arc<ReStore>, config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedulerState::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
            fault: Mutex::new(None),
        });
        let obs = Arc::new(ServiceObs::new(restore.registry()));
        let replication = Arc::new(ReplicationHub::default());
        // Seed breakers the driver knows to be open (a promoted warm
        // standby replayed its primary's `breaker-state` records): each
        // inherited breaker sheds for one full cooldown from now, so
        // promotion does not greet a failing tenant with a thundering
        // herd. Seeded before any worker thread exists, so no lock
        // ordering with the worker loop is created.
        {
            let now = Instant::now();
            let mut st = shared.lock();
            for key in restore.open_breaker_keys() {
                let tenant = (!key.is_empty()).then_some(key.as_str());
                let policy = restore.config_as(tenant).failure;
                st.failure.insert(key, TenantFailureState::inherited_open(&policy, now));
            }
        }
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let restore = restore.clone();
                let shared = shared.clone();
                let cross = config.cross_workflow;
                let obs = obs.clone();
                let replication = replication.clone();
                std::thread::spawn(move || worker_loop(restore, shared, cross, obs, replication))
            })
            .collect();
        RestoreService {
            restore,
            config,
            shared,
            workers,
            quiesce: Mutex::new(()),
            checkpoint: Mutex::new(None),
            replication,
            obs,
        }
    }

    /// The underlying driver session (e.g. for DFS access or
    /// repository introspection).
    pub fn driver(&self) -> &ReStore {
        &self.restore
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Compile `query` and enqueue it for execution as `tenant`.
    /// Admission control runs *before* queueing: a full queue or a
    /// tenant at its in-flight cap is rejected immediately — the call
    /// never blocks on capacity.
    pub fn submit(
        &self,
        tenant: Option<&str>,
        query: &str,
        out_prefix: &str,
    ) -> Result<SubmitHandle, ServiceError> {
        // The tenant's effective config governs compilation too: with
        // `canonicalize` on, paraphrases of warm queries hit the
        // repository (see [`ReStore::compile_as`]).
        let wf = self.restore.compile_as(tenant, query, out_prefix).map_err(ServiceError::Query)?;
        self.submit_workflow(tenant, wf)
    }

    /// Enqueue an already-compiled workflow (see [`RestoreService::submit`]).
    pub fn submit_workflow(
        &self,
        tenant: Option<&str>,
        wf: CompiledWorkflow,
    ) -> Result<SubmitHandle, ServiceError> {
        // An empty tenant name and `None` both mean the default
        // namespace; normalize so admission accounting and the driver
        // agree on which namespace serves the workflow.
        let tenant = tenant.filter(|t| !t.is_empty());
        let footprint = wf.io_path_sets();
        let key = tenant_key(tenant);
        // Effective failure policy read before the scheduler lock (the
        // driver read takes its own locks).
        let policy = self.restore.config_as(tenant).failure;
        let mut st = self.shared.lock();
        if st.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        if st.queue.len() >= self.config.queue_depth {
            st.rejected += 1;
            st.per_tenant.entry(key).or_default().rejected += 1;
            return Err(ServiceError::Overloaded { queue_depth: self.config.queue_depth });
        }
        let load = st.tenant_load.get(&key).copied().unwrap_or(0);
        if load >= self.config.max_inflight_per_tenant {
            st.rejected += 1;
            st.per_tenant.entry(key.clone()).or_default().rejected += 1;
            return Err(ServiceError::TenantOverloaded {
                tenant: key,
                max_inflight: self.config.max_inflight_per_tenant,
            });
        }
        // The breaker is the last admission gate: a shed submission
        // never reaches the queue, so a flapping tenant costs one map
        // lookup per submission instead of a worker slot. While
        // half-open, admitted submissions are probes whose outcomes
        // decide recovery.
        let probe = if policy.breaker_enabled() {
            match st.failure.entry(key.clone()).or_default().admit(&policy, Instant::now()) {
                Admission::Admit { probe } => probe,
                Admission::Shed => {
                    st.rejected += 1;
                    st.per_tenant.entry(key.clone()).or_default().rejected += 1;
                    self.obs.circuit_shed.inc();
                    return Err(ServiceError::CircuitOpen { tenant: key });
                }
            }
        } else {
            false
        };
        st.submitted += 1;
        let id = st.submitted;
        let counters = st.per_tenant.entry(key.clone()).or_default();
        counters.submitted += 1;
        *st.tenant_load.entry(key).or_default() += 1;
        let ticket = Arc::new(Ticket::with_wait_hist(self.obs.ticket_wait.clone()));
        st.queue.push_back(QueuedWorkflow {
            id,
            tenant: tenant.map(str::to_string),
            wf,
            footprint,
            ticket: ticket.clone(),
            enqueued: Instant::now(),
            attempt: 0,
            not_before: None,
            probe,
        });
        drop(st);
        self.shared.work.notify_one();
        Ok(SubmitHandle { id, tenant: tenant.map(str::to_string), ticket })
    }

    /// Stop dispatching queued workflows (already-running ones finish).
    /// Useful as a maintenance window — e.g. around
    /// [`ReStore::save_state`] — and for deterministic admission tests.
    pub fn pause(&self) {
        self.shared.lock().paused = true;
    }

    /// Resume dispatching after [`RestoreService::pause`].
    pub fn resume(&self) {
        self.shared.lock().paused = false;
        self.shared.work.notify_all();
    }

    /// Block until the queue is empty and no workflow is running. Call
    /// only while dispatch is active (not paused), or it never returns.
    pub fn drain(&self) {
        let mut st = self.shared.lock();
        while !(st.queue.is_empty() && st.inflight.is_empty()) {
            st = self.shared.idle.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Run `f` against a quiesced driver: dispatch is paused and no
    /// workflow is in flight, so nothing mutates repository, provenance,
    /// config, or DFS reuse state while `f` runs. Queued submissions
    /// stay queued; dispatch resumes afterwards unless the service was
    /// already paused by the caller. Concurrent quiescers serialize on
    /// the quiesce mutex (calling [`RestoreService::resume`] from a
    /// third thread during a snapshot still un-pauses dispatch — pair
    /// `resume` with your own `pause`, not with admin operations).
    fn with_quiesced<R>(&self, f: impl FnOnce(&ReStore) -> R) -> R {
        let _admin = self.quiesce.lock().unwrap_or_else(|e| e.into_inner());
        let was_paused;
        {
            let mut st = self.shared.lock();
            was_paused = st.paused;
            st.paused = true;
            while !st.inflight.is_empty() {
                st = self.shared.idle.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        let out = f(&self.restore);
        if !was_paused {
            self.resume();
        }
        out
    }

    /// Take a consistent `restore-state v2` snapshot of the whole
    /// session: pause dispatch, wait for in-flight workflows to drain,
    /// serialize every tenant namespace (state, provenance, per-tenant
    /// policy, counters), and resume. Submissions arriving during the
    /// snapshot are queued, not rejected, and dispatch picks them up as
    /// soon as the snapshot is written.
    pub fn snapshot(&self) -> String {
        self.with_quiesced(|rs| rs.save_state())
    }

    /// Restore session state serialized by [`RestoreService::snapshot`]
    /// (or [`ReStore::save_state`], or a legacy v1 document): quiesce
    /// in-flight work, load the state into the driver, and resume.
    /// Queued submissions then execute against the restored state.
    ///
    /// In continuous-checkpoint mode the keeper is **rebased** exactly
    /// as [`RestoreService::restore_incremental`] does: the load
    /// replaces the session wholesale, so the pre-restore base and
    /// buffered segments are discarded and a fresh base is anchored.
    /// (The journaled `replace` record would keep the old lineage
    /// *correct*, but every subsequent set would drag a full-state
    /// record along — the rebase keeps checkpoint size proportional to
    /// the restored state.)
    pub fn restore(&self, state: &str) -> Result<(), ServiceError> {
        // Keeper before quiesce: the same lock order as
        // `restore_incremental`, so no capture can interleave between
        // the state swap and the rebase.
        let mut keeper = self.checkpoint.lock().unwrap_or_else(|e| e.into_inner());
        self.with_quiesced(|rs| rs.load_state(state)).map_err(ServiceError::Query)?;
        if let Some(k) = keeper.as_mut() {
            // Discard records journaled against the replaced lineage
            // (including the just-appended `replace`), then anchor.
            let _ = self.restore.save_state_delta();
            k.base = self.restore.save_state();
            k.segments.clear();
            k.journal_bytes = 0;
        }
        Ok(())
    }

    /// Attach a warm standby behind `transport`: the driver's journal
    /// is enabled if it was off, an anchoring base ships immediately,
    /// and from here every sealed journal segment is forwarded — the
    /// worker pool pumps a shipping beat after each completed workflow.
    /// The receiving side is a [`crate::Standby`] (same process) or any
    /// [`restore_core::ReplicaSession`] tailing the transport's far
    /// end. Detach by closing the transport.
    pub fn attach_standby(
        &self,
        transport: Arc<dyn ReplicationTransport>,
    ) -> Result<(), ServiceError> {
        let replicator = Replicator::attach(self.restore.clone(), transport)
            .map_err(ServiceError::Replication)?;
        self.replication.replicators.lock().unwrap_or_else(|e| e.into_inner()).push(replicator);
        Ok(())
    }

    /// Ship a replication beat on every attached link right now,
    /// without waiting for the next workflow completion (flush cadence
    /// control, deterministic tests).
    pub fn ship_now(&self) {
        self.replication.pump_all();
    }

    /// Standby links currently attached.
    pub fn standby_count(&self) -> usize {
        self.replication.attached()
    }

    /// Records journaled but not yet shipped, maximized over attached
    /// links (0 with no standby attached).
    pub fn replication_lag_records(&self) -> u64 {
        let reps = self.replication.replicators.lock().unwrap_or_else(|e| e.into_inner());
        reps.iter().map(|r| r.lag_records()).max().unwrap_or(0)
    }

    /// Switch the service into **continuous-checkpoint mode**: enable
    /// the driver's snapshot journal and capture the base checkpoint
    /// the journal anchors to. Neither step drains the pool — the base
    /// is the driver's freeze-per-namespace dump, so submissions and
    /// in-flight workflows keep flowing; mutations that race the base
    /// capture replay idempotently from the journal.
    ///
    /// From here, call [`RestoreService::checkpoint_incremental`] on
    /// whatever cadence the durability target requires (every few
    /// seconds, after every N submissions, …) and persist the
    /// [`CheckpointSet`]. The legacy drain-quiesce
    /// [`RestoreService::snapshot`] remains available as a manual
    /// full-dump fallback.
    pub fn checkpoint_begin(&self, config: CheckpointConfig) -> CheckpointOutcome {
        let mut keeper = self.checkpoint.lock().unwrap_or_else(|e| e.into_inner());
        self.restore.enable_journal(JournalConfig { segment_bytes: config.segment_bytes });
        let base = self.restore.save_state();
        let base_bytes = base.len();
        *keeper = Some(CheckpointKeeper {
            config,
            base,
            segments: Vec::new(),
            journal_bytes: 0,
            compactions: 0,
        });
        CheckpointOutcome { segments_added: 0, compacted: false, base_bytes, journal_bytes: 0 }
    }

    /// Capture an incremental checkpoint: drain the journal's
    /// accumulated records into sealed segments and append them to the
    /// checkpoint set. **Zero drain**: unlike
    /// [`RestoreService::snapshot`], this neither pauses dispatch nor
    /// waits for in-flight workflows — capture cost is proportional to
    /// what changed since the last call, so it can run on a tight
    /// cadence under full load.
    ///
    /// When the accumulated journal grows past
    /// [`CheckpointConfig::compact_ratio`] × base size, the journal is
    /// folded into a fresh base (again without draining) and the
    /// covered segments are dropped.
    pub fn checkpoint_incremental(&self) -> Result<CheckpointOutcome, ServiceError> {
        let mut guard = self.checkpoint.lock().unwrap_or_else(|e| e.into_inner());
        let keeper = guard.as_mut().ok_or(ServiceError::CheckpointsNotEnabled)?;
        let capture_t0 = Instant::now();
        let added = self.restore.save_state_delta().map_err(ServiceError::Query)?;
        let segments_added = added.len();
        keeper.journal_bytes += added.iter().map(String::len).sum::<usize>();
        keeper.segments.extend(added);
        self.obs.checkpoint_capture.record_elapsed(capture_t0);
        let mut compacted = false;
        if keeper.journal_bytes as f64 > keeper.config.compact_ratio * keeper.base.len() as f64 {
            // Fold: a fresh base covers (by sequence number) every
            // record in the accumulated segments, so they can go. New
            // records appended *during* this dump stay in the live
            // journal and ride out with the next delta — replaying
            // them over the new base is idempotent.
            let compact_t0 = Instant::now();
            keeper.base = self.restore.save_state();
            keeper.segments.clear();
            keeper.journal_bytes = 0;
            keeper.compactions += 1;
            self.obs.checkpoint_compact.record_elapsed(compact_t0);
            self.obs.compactions.inc();
            compacted = true;
        }
        Ok(CheckpointOutcome {
            segments_added,
            compacted,
            base_bytes: keeper.base.len(),
            journal_bytes: keeper.journal_bytes,
        })
    }

    /// The current recoverable checkpoint (base + segments), cloned for
    /// persistence; `None` before [`RestoreService::checkpoint_begin`].
    pub fn checkpoint_set(&self) -> Option<CheckpointSet> {
        let guard = self.checkpoint.lock().unwrap_or_else(|e| e.into_inner());
        guard.as_ref().map(|k| CheckpointSet { base: k.base.clone(), segments: k.segments.clone() })
    }

    /// How many times the journal has been folded into a fresh base.
    pub fn checkpoint_compactions(&self) -> u64 {
        let guard = self.checkpoint.lock().unwrap_or_else(|e| e.into_inner());
        guard.as_ref().map(|k| k.compactions).unwrap_or(0)
    }

    /// Rebuild session state from a [`CheckpointSet`]: quiesce the pool
    /// (like [`RestoreService::restore`]), load the base, and replay
    /// the journal segments. A torn tail in the final segment — the
    /// signature of a crash mid-append — is truncated and reported in
    /// the returned [`RecoveryReport`].
    ///
    /// If this service is itself in continuous-checkpoint mode, its
    /// keeper is **rebased** onto the restored state: the pre-restore
    /// base, segments, and any journal records buffered from the
    /// replaced lineage are discarded, and a fresh base is anchored —
    /// otherwise the next [`RestoreService::checkpoint_incremental`]
    /// would splice new deltas onto the *old* lineage and its set
    /// would no longer reproduce the live session.
    pub fn restore_incremental(&self, set: &CheckpointSet) -> Result<RecoveryReport, ServiceError> {
        // Hold the keeper across the whole quiesced restore so no
        // capture interleaves between the state swap and the rebase.
        let mut keeper = self.checkpoint.lock().unwrap_or_else(|e| e.into_inner());
        let report = self
            .with_quiesced(|rs| rs.recover(&set.base, &set.segments))
            .map_err(ServiceError::Query)?;
        if let Some(k) = keeper.as_mut() {
            // Drop records journaled before the restore (stale
            // lineage), then anchor a fresh base over the restored
            // state.
            let _ = self.restore.save_state_delta();
            k.base = self.restore.save_state();
            k.segments.clear();
            k.journal_bytes = 0;
        }
        Ok(report)
    }

    /// Set `tenant`'s policy override: subsequent submissions from that
    /// tenant run with `config` (heuristic, §5 selection, quotas)
    /// instead of the global default. `None` (or an empty name) sets
    /// the global configuration. Workflows already dispatched keep the
    /// policy they started with.
    pub fn set_tenant_config(&self, tenant: Option<&str>, config: restore_core::ReStoreConfig) {
        self.restore.set_config_as(tenant, config);
    }

    /// The effective policy for `tenant` (its override, or the global
    /// default).
    pub fn tenant_config(&self, tenant: Option<&str>) -> restore_core::ReStoreConfig {
        self.restore.config_as(tenant)
    }

    /// Install (`Some`) or remove (`None`) the deterministic
    /// fault-injection hook: before each execution attempt the worker
    /// consults the injector, and a `Some(reason)` verdict fails the
    /// attempt with a `Job` error *before* the driver runs (no
    /// repository or DFS state mutates). The failure then flows through
    /// the tenant's [`restore_core::FailurePolicy`] exactly like a real
    /// one — retries, dead-lettering, breaker accounting — which is the
    /// point: failure-path tests and drills script exact schedules
    /// keyed on (tenant, submission id, attempt). Takes effect for
    /// attempts dispatched after the call.
    pub fn set_fault_injector(&self, injector: Option<Arc<dyn FaultInjector>>) {
        *self.shared.fault.lock().unwrap_or_else(|e| e.into_inner()) = injector;
    }

    /// Service-level and per-tenant counters plus each tenant's
    /// repository statistics. The tenant list and counters come from one
    /// scheduler-lock section and the repository rows from one driver
    /// cut ([`ReStore::stats_all`]), so per-tenant rows always sum to
    /// the service totals of the same call and every row reports the
    /// same `queries_executed` — per-tenant `stats_as` reads taken
    /// row-by-row could straddle concurrent executions.
    pub fn stats(&self) -> ServiceStats {
        let (queued, running, submitted, completed, rejected, mut tenants) = {
            let st = self.shared.lock();
            let tenants: Vec<(String, crate::scheduler::TenantCounters, usize)> = st
                .per_tenant
                .iter()
                .map(|(k, c)| (k.clone(), c.clone(), st.tenant_load.get(k).copied().unwrap_or(0)))
                .collect();
            (st.queue.len(), st.inflight.len(), st.submitted, st.completed, st.rejected, tenants)
        };
        tenants.sort_by(|a, b| a.0.cmp(&b.0));
        let all = self.restore.stats_all();
        let queries_executed = all.first().map(|(_, s)| s.queries_executed).unwrap_or(0);
        let repos: HashMap<String, ReStoreStats> = all.into_iter().collect();
        let tenants = tenants
            .into_iter()
            .map(|(tenant, c, inflight)| {
                // A tenant can have counters without a namespace (every
                // submission rejected or still queued): report an empty
                // repository at the cut's shared clock.
                let repository = repos.get(&tenant).copied().unwrap_or(ReStoreStats {
                    repository_entries: 0,
                    stored_bytes: 0,
                    total_uses: 0,
                    never_used: 0,
                    queries_executed,
                    provenance_entries: 0,
                });
                TenantServiceStats {
                    tenant,
                    submitted: c.submitted,
                    completed: c.completed,
                    rejected: c.rejected,
                    inflight,
                    repository,
                }
            })
            .collect();
        ServiceStats {
            workers: self.workers.len(),
            queued,
            running,
            submitted,
            completed,
            rejected,
            tenants,
        }
    }

    /// The reuse-decision trace of a completed submission: why each
    /// repository candidate matched or was rejected, per job. `None`
    /// while the workflow is still queued or running, if it failed, or
    /// if its events have already been evicted from the trace ring.
    pub fn trace(&self, handle: &SubmitHandle) -> Option<Vec<ReuseTraceEvent>> {
        let tick = handle.ticket.tick()?;
        let events = self.restore.trace_for(handle.tenant(), tick);
        if events.is_empty() {
            None
        } else {
            Some(events)
        }
    }

    /// Render every metric family — driver and service — in Prometheus
    /// text exposition format. Counters and histograms stream in as the
    /// system runs; point-in-time gauges (queue depth, journal lag,
    /// per-namespace repository totals) are sampled here, at scrape
    /// time, the way a Prometheus `collect` hook would.
    pub fn render_metrics(&self) -> String {
        let registry = self.restore.registry();
        let g = |name: &str, help: &str, labels: &[(&str, &str)], v: f64| {
            registry.gauge(name, help, labels).set(v);
        };
        // Scheduler/pool gauges from one lock section.
        {
            let st = self.shared.lock();
            g("service_queue_depth", "Workflows currently queued", &[], st.queue.len() as f64);
            g("service_inflight", "Workflows currently executing", &[], st.inflight.len() as f64);
            g("service_workers", "Worker-pool size", &[], self.workers.len() as f64);
            g(
                "service_worker_utilization",
                "Fraction of workers currently executing a workflow",
                &[],
                st.inflight.len() as f64 / self.workers.len().max(1) as f64,
            );
            for (tenant, c) in st.per_tenant.iter() {
                let labels = [("tenant", tenant.as_str())];
                g("service_submitted", "Workflows admitted", &labels, c.submitted as f64);
                g("service_completed", "Workflows completed", &labels, c.completed as f64);
                g(
                    "service_rejected",
                    "Workflows rejected at admission",
                    &labels,
                    c.rejected as f64,
                );
            }
            for (tenant, fs) in st.failure.iter() {
                g(
                    "restore_circuit_state",
                    "Circuit-breaker state (0 = closed, 1 = open, 2 = half-open)",
                    &[("tenant", tenant.as_str())],
                    fs.gauge(),
                );
            }
        }
        // Dead-letter depth for every live namespace, zeros included —
        // an alert on depth > 0 must see the family exist beforehand.
        for (tenant, depth) in self.restore.dlq_depths() {
            g(
                "restore_dlq_depth",
                "Dead-letter queue depth",
                &[("tenant", tenant.as_str())],
                depth as f64,
            );
        }
        // Journal gauges (lock-free stats reads plus brief lane peeks).
        let js = self.restore.journal_stats();
        g("restore_journal_seq", "Last assigned journal sequence number", &[], js.seq as f64);
        g(
            "restore_journal_live_bytes",
            "Bytes buffered across live lanes",
            &[],
            js.live_bytes as f64,
        );
        g(
            "restore_journal_sealed_segments",
            "Segments sealed since the last delta capture",
            &[],
            js.sealed_segments as f64,
        );
        g(
            "restore_journal_seq_lag",
            "Records appended since the last delta capture",
            &[],
            self.restore.journal_seq_lag() as f64,
        );
        for (lane, bytes) in self.restore.journal_lane_bytes().into_iter().enumerate() {
            g(
                "restore_journal_lane_bytes",
                "Bytes buffered per journal lane",
                &[("lane", &lane.to_string())],
                bytes as f64,
            );
        }
        // Checkpoint keeper gauges.
        {
            let keeper = self.checkpoint.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(k) = keeper.as_ref() {
                g(
                    "restore_checkpoint_base_bytes",
                    "Base checkpoint size",
                    &[],
                    k.base.len() as f64,
                );
                g(
                    "restore_checkpoint_journal_bytes",
                    "Journal bytes riding on the base checkpoint",
                    &[],
                    k.journal_bytes as f64,
                );
                g(
                    "restore_checkpoint_segments",
                    "Captured segments in the checkpoint set",
                    &[],
                    k.segments.len() as f64,
                );
            }
        }
        // Replication gauges: one shipping-state sample per scrape. The
        // rate families (`restore_replication_lag_seconds`,
        // `restore_replication_records_shipped_total`,
        // `restore_replica_resyncs_total`) stream in through the
        // registry as shipping runs.
        {
            let reps = self.replication.replicators.lock().unwrap_or_else(|e| e.into_inner());
            if !reps.is_empty() {
                g(
                    "restore_replication_standbys",
                    "Standby links currently attached",
                    &[],
                    reps.len() as f64,
                );
                g(
                    "restore_replication_lag_records",
                    "Records journaled but not yet shipped (max over links)",
                    &[],
                    reps.iter().map(|r| r.lag_records()).max().unwrap_or(0) as f64,
                );
            }
        }
        // Per-namespace repository gauges from one consistent cut.
        for (tenant, stats) in self.restore.stats_all() {
            let t = tenant.as_str();
            let (publishes, writer_sections) =
                self.restore.write_counters_as(if t.is_empty() { None } else { Some(t) });
            let labels = [("tenant", t)];
            g(
                "restore_repo_entries",
                "Repository entries",
                &labels,
                stats.repository_entries as f64,
            );
            g(
                "restore_repo_stored_bytes",
                "Stored output bytes",
                &labels,
                stats.stored_bytes as f64,
            );
            g(
                "restore_repo_total_uses",
                "Rewrites served by entries",
                &labels,
                stats.total_uses as f64,
            );
            g(
                "restore_repo_publishes",
                "RCU snapshot publishes (summed across shards)",
                &labels,
                publishes as f64,
            );
            g(
                "restore_repo_writer_sections",
                "Repository writer-section entries (summed across shards)",
                &labels,
                writer_sections as f64,
            );
        }
        registry.render()
    }

    /// Stop accepting new work, finish everything queued, and join the
    /// worker pool.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
            // A paused service must still drain on shutdown.
            st.paused = false;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for RestoreService {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_inner();
        }
    }
}

fn worker_loop(
    restore: Arc<ReStore>,
    shared: Arc<Shared>,
    cross_workflow: bool,
    obs: Arc<ServiceObs>,
    replication: Arc<ReplicationHub>,
) {
    // A workflow that writes a repository-registered path is a
    // scheduling barrier: reuse rewriting could make any other workflow
    // Load that path at run time, invisibly to submit-time footprints.
    let is_barrier = |q: &QueuedWorkflow| q.footprint.writes.iter().any(|w| restore.serves_path(w));
    loop {
        let (entry, barrier) = {
            let mut st = shared.lock();
            loop {
                if st.shutdown && st.queue.is_empty() {
                    return;
                }
                if !st.paused {
                    let probe_t0 = Instant::now();
                    let picked = pick(&st, cross_workflow, Instant::now(), is_barrier);
                    obs.conflict_probe.record_elapsed(probe_t0);
                    if let Some((i, barrier)) = picked {
                        let entry = st.queue.remove(i).expect("picked index exists");
                        st.inflight.push((entry.id, entry.footprint.clone()));
                        st.inflight_barriers += usize::from(barrier);
                        break (entry, barrier);
                    }
                    // Dispatch is frozen behind an in-flight barrier
                    // workflow with work waiting — the stall the
                    // exposition's barrier counter measures.
                    if st.inflight_barriers > 0 && !st.queue.is_empty() {
                        obs.barrier_stalls.inc();
                    }
                }
                // A retry backing off wakes the pool by deadline; with
                // none pending, sleep until a submission or completion
                // notifies.
                st = match next_ready_deadline(&st, Instant::now()) {
                    Some(deadline) => {
                        let wait = deadline.saturating_duration_since(Instant::now());
                        shared.work.wait_timeout(st, wait).unwrap_or_else(|e| e.into_inner()).0
                    }
                    None => shared.work.wait(st).unwrap_or_else(|e| e.into_inner()),
                };
            }
        };
        let QueuedWorkflow { id, tenant, wf, footprint, ticket, enqueued, attempt, probe, .. } =
            entry;
        obs.queue_wait.record_elapsed(enqueued);
        // The failure policy current at dispatch governs this attempt
        // (a mid-flight policy change applies from the next attempt on).
        let policy = restore.config_as(tenant.as_deref()).failure;
        // Retry and dead-letter dispositions need the workflow back
        // after execution consumes it; everyone else skips the clone.
        let keep_wf =
            (policy.retries() || policy.on_failure == FailureDisposition::Dlq).then(|| wf.clone());
        let injected = {
            let inj = shared.fault.lock().unwrap_or_else(|e| e.into_inner()).clone();
            inj.and_then(|i| i.inject(tenant.as_deref(), id, attempt))
        };
        // Contain panics: a poisoned workflow must not kill the worker or
        // leave its footprint stuck in the in-flight set (which would
        // block every conflicting submission forever).
        let run_t0 = Instant::now();
        let result = match injected {
            Some(reason) => Err(restore_common::Error::Job(reason)),
            None => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                restore.execute_workflow_as(tenant.as_deref(), wf)
            }))
            .unwrap_or_else(|payload| {
                // Preserve the panic payload: "panicked: index out of
                // bounds …" debugs; a bare "panicked" does not.
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    format!("workflow execution panicked: {s}")
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    format!("workflow execution panicked: {s}")
                } else {
                    "workflow execution panicked".to_string()
                };
                Err(restore_common::Error::Job(msg))
            }),
        };
        obs.worker_run.record_elapsed(run_t0);
        let now = Instant::now();
        let will_retry = result.is_err() && policy.retries() && attempt < policy.max_retries;
        // Retries exhausted under the Dlq disposition: park the
        // workflow durably *before* completing the ticket, so a waiter
        // observing the error already finds the entry inspectable.
        if result.is_err() && !will_retry && policy.on_failure == FailureDisposition::Dlq {
            let why = result.as_ref().err().map(ToString::to_string).unwrap_or_default();
            let parked = keep_wf.clone().expect("dlq disposition keeps the workflow");
            restore.dlq_put_as(tenant.as_deref(), parked, &why, attempt + 1);
            obs.dlq_puts.inc();
        }
        {
            let mut st = shared.lock();
            st.inflight.retain(|(fid, _)| *fid != id);
            st.inflight_barriers -= usize::from(barrier);
            let key = tenant_key(tenant.as_deref());
            // Feed the breaker: probes always report (they decide the
            // half-open verdict); ordinary outcomes feed the window
            // except failures under Drop — a tenant declaring its
            // traffic best-effort must not trip its own breaker.
            let dropped_failure = result.is_err() && policy.on_failure == FailureDisposition::Drop;
            if policy.breaker_enabled() && (probe || !dropped_failure) {
                let breaker = st.failure.entry(key.clone()).or_default();
                let was_open = breaker.gauge() != 0.0;
                breaker.record(&policy, probe, result.is_err(), now);
                let is_open = breaker.gauge() != 0.0;
                // Journal the Closed <-> not-Closed transition so a
                // promoted standby inherits the open breaker. (The
                // open -> half-open edge happens on the admit path but
                // never crosses that boundary, so this is the only
                // transition site that needs to note.)
                if is_open != was_open {
                    restore.note_breaker_state(tenant.as_deref(), is_open);
                }
            }
            if will_retry {
                // Re-enqueue instead of sleeping on the worker: the
                // slot frees immediately and the backoff delay runs on
                // the queue. Same id (the ticket stays attached), probe
                // cleared (the breaker already judged the probe by its
                // first outcome above).
                let next_attempt = attempt + 1;
                st.queue.push_back(QueuedWorkflow {
                    id,
                    tenant: tenant.clone(),
                    wf: keep_wf.clone().expect("retry disposition keeps the workflow"),
                    footprint,
                    ticket: ticket.clone(),
                    enqueued: Instant::now(),
                    attempt: next_attempt,
                    not_before: Some(now + policy.backoff_for(next_attempt, id)),
                    probe: false,
                });
                obs.retries.inc();
                // tenant_load is untouched: the submission is still
                // queued, so the tenant's in-flight cap keeps counting
                // it.
            } else {
                if let Some(load) = st.tenant_load.get_mut(&key) {
                    *load = load.saturating_sub(1);
                }
                st.completed += 1;
                st.per_tenant.entry(key).or_default().completed += 1;
            }
        }
        // A completion can unblock a conflicting queue entry for every
        // waiting worker, and `drain` may be watching.
        shared.work.notify_all();
        shared.idle.notify_all();
        // Ship the workflow's journal records to attached standbys
        // before completing the ticket, so a caller that observed the
        // completion knows the records are at least in flight.
        if replication.attached() > 0 {
            replication.pump_all();
        }
        if !will_retry {
            ticket.complete(result.map_err(ServiceError::Query));
        }
    }
}
