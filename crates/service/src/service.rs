//! The service object: admission control, the worker pool, and
//! introspection.

use crate::scheduler::{pick, tenant_key, QueuedWorkflow, SchedulerState};
use crate::ticket::{SubmitHandle, Ticket};
use crate::ServiceError;
use restore_core::{ReStore, ReStoreStats};
use restore_dataflow::CompiledWorkflow;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Fixed worker-pool size (minimum 1).
    pub workers: usize,
    /// Bound of the submission queue; a full queue sheds new work with
    /// [`ServiceError::Overloaded`].
    pub queue_depth: usize,
    /// Maximum workflows one tenant may have queued + running; beyond it
    /// submissions are rejected with [`ServiceError::TenantOverloaded`].
    pub max_inflight_per_tenant: usize,
    /// Overlap queued workflows with disjoint DFS footprints. Disabling
    /// reverts to strict FIFO dispatch (still pipelined across workers
    /// when consecutive submissions are disjoint).
    pub cross_workflow: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_depth: 64,
            max_inflight_per_tenant: 16,
            cross_workflow: true,
        }
    }
}

/// Snapshot of one tenant's serving activity (see
/// [`RestoreService::stats`]).
#[derive(Debug, Clone)]
pub struct TenantServiceStats {
    /// Tenant name; empty string = the default namespace.
    pub tenant: String,
    pub submitted: u64,
    pub completed: u64,
    pub rejected: u64,
    /// Workflows currently queued or running for this tenant.
    pub inflight: usize,
    /// The tenant's repository, as the driver reports it.
    pub repository: ReStoreStats,
}

/// Point-in-time service introspection.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    pub workers: usize,
    pub queued: usize,
    pub running: usize,
    pub submitted: u64,
    pub completed: u64,
    pub rejected: u64,
    /// Per-tenant breakdown, sorted by tenant name.
    pub tenants: Vec<TenantServiceStats>,
}

struct Shared {
    state: Mutex<SchedulerState>,
    /// Workers wait here for runnable queue entries.
    work: Condvar,
    /// `drain` waiters park here until queue and in-flight are empty.
    idle: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, SchedulerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The query-submission service. Owns a [`ReStore`] session and a fixed
/// pool of worker threads; see the crate docs for the architecture.
pub struct RestoreService {
    restore: Arc<ReStore>,
    config: ServiceConfig,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes quiesced admin operations (`snapshot`, `restore`):
    /// two quiescers overlapping would both observe an idle pool and
    /// run their critical sections — e.g. a restore swapping state
    /// mid-snapshot — so only one may hold the pool quiesced at a time.
    quiesce: Mutex<()>,
}

impl RestoreService {
    /// Start the service over a fresh driver session.
    pub fn new(restore: ReStore, config: ServiceConfig) -> Self {
        Self::over(Arc::new(restore), config)
    }

    /// Start the service over an existing (possibly shared) session.
    pub fn over(restore: Arc<ReStore>, config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedulerState::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let restore = restore.clone();
                let shared = shared.clone();
                let cross = config.cross_workflow;
                std::thread::spawn(move || worker_loop(restore, shared, cross))
            })
            .collect();
        RestoreService { restore, config, shared, workers, quiesce: Mutex::new(()) }
    }

    /// The underlying driver session (e.g. for DFS access or
    /// repository introspection).
    pub fn driver(&self) -> &ReStore {
        &self.restore
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Compile `query` and enqueue it for execution as `tenant`.
    /// Admission control runs *before* queueing: a full queue or a
    /// tenant at its in-flight cap is rejected immediately — the call
    /// never blocks on capacity.
    pub fn submit(
        &self,
        tenant: Option<&str>,
        query: &str,
        out_prefix: &str,
    ) -> Result<SubmitHandle, ServiceError> {
        let wf = restore_dataflow::compile(query, out_prefix).map_err(ServiceError::Query)?;
        self.submit_workflow(tenant, wf)
    }

    /// Enqueue an already-compiled workflow (see [`RestoreService::submit`]).
    pub fn submit_workflow(
        &self,
        tenant: Option<&str>,
        wf: CompiledWorkflow,
    ) -> Result<SubmitHandle, ServiceError> {
        // An empty tenant name and `None` both mean the default
        // namespace; normalize so admission accounting and the driver
        // agree on which namespace serves the workflow.
        let tenant = tenant.filter(|t| !t.is_empty());
        let footprint = wf.io_path_sets();
        let key = tenant_key(tenant);
        let mut st = self.shared.lock();
        if st.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        if st.queue.len() >= self.config.queue_depth {
            st.rejected += 1;
            st.per_tenant.entry(key).or_default().rejected += 1;
            return Err(ServiceError::Overloaded { queue_depth: self.config.queue_depth });
        }
        let load = st.tenant_load.get(&key).copied().unwrap_or(0);
        if load >= self.config.max_inflight_per_tenant {
            st.rejected += 1;
            st.per_tenant.entry(key.clone()).or_default().rejected += 1;
            return Err(ServiceError::TenantOverloaded {
                tenant: key,
                max_inflight: self.config.max_inflight_per_tenant,
            });
        }
        st.submitted += 1;
        let id = st.submitted;
        let counters = st.per_tenant.entry(key.clone()).or_default();
        counters.submitted += 1;
        *st.tenant_load.entry(key).or_default() += 1;
        let ticket = Arc::new(Ticket::default());
        st.queue.push_back(QueuedWorkflow {
            id,
            tenant: tenant.map(str::to_string),
            wf,
            footprint,
            ticket: ticket.clone(),
        });
        drop(st);
        self.shared.work.notify_one();
        Ok(SubmitHandle { id, tenant: tenant.map(str::to_string), ticket })
    }

    /// Stop dispatching queued workflows (already-running ones finish).
    /// Useful as a maintenance window — e.g. around
    /// [`ReStore::save_state`] — and for deterministic admission tests.
    pub fn pause(&self) {
        self.shared.lock().paused = true;
    }

    /// Resume dispatching after [`RestoreService::pause`].
    pub fn resume(&self) {
        self.shared.lock().paused = false;
        self.shared.work.notify_all();
    }

    /// Block until the queue is empty and no workflow is running. Call
    /// only while dispatch is active (not paused), or it never returns.
    pub fn drain(&self) {
        let mut st = self.shared.lock();
        while !(st.queue.is_empty() && st.inflight.is_empty()) {
            st = self.shared.idle.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Run `f` against a quiesced driver: dispatch is paused and no
    /// workflow is in flight, so nothing mutates repository, provenance,
    /// config, or DFS reuse state while `f` runs. Queued submissions
    /// stay queued; dispatch resumes afterwards unless the service was
    /// already paused by the caller. Concurrent quiescers serialize on
    /// the quiesce mutex (calling [`RestoreService::resume`] from a
    /// third thread during a snapshot still un-pauses dispatch — pair
    /// `resume` with your own `pause`, not with admin operations).
    fn with_quiesced<R>(&self, f: impl FnOnce(&ReStore) -> R) -> R {
        let _admin = self.quiesce.lock().unwrap_or_else(|e| e.into_inner());
        let was_paused;
        {
            let mut st = self.shared.lock();
            was_paused = st.paused;
            st.paused = true;
            while !st.inflight.is_empty() {
                st = self.shared.idle.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        let out = f(&self.restore);
        if !was_paused {
            self.resume();
        }
        out
    }

    /// Take a consistent `restore-state v2` snapshot of the whole
    /// session: pause dispatch, wait for in-flight workflows to drain,
    /// serialize every tenant namespace (state, provenance, per-tenant
    /// policy, counters), and resume. Submissions arriving during the
    /// snapshot are queued, not rejected, and dispatch picks them up as
    /// soon as the snapshot is written.
    pub fn snapshot(&self) -> String {
        self.with_quiesced(|rs| rs.save_state())
    }

    /// Restore session state serialized by [`RestoreService::snapshot`]
    /// (or [`ReStore::save_state`], or a legacy v1 document): quiesce
    /// in-flight work, load the state into the driver, and resume.
    /// Queued submissions then execute against the restored state.
    pub fn restore(&self, state: &str) -> Result<(), ServiceError> {
        self.with_quiesced(|rs| rs.load_state(state)).map_err(ServiceError::Query)
    }

    /// Set `tenant`'s policy override: subsequent submissions from that
    /// tenant run with `config` (heuristic, §5 selection, quotas)
    /// instead of the global default. `None` (or an empty name) sets
    /// the global configuration. Workflows already dispatched keep the
    /// policy they started with.
    pub fn set_tenant_config(&self, tenant: Option<&str>, config: restore_core::ReStoreConfig) {
        self.restore.set_config_as(tenant, config);
    }

    /// The effective policy for `tenant` (its override, or the global
    /// default).
    pub fn tenant_config(&self, tenant: Option<&str>) -> restore_core::ReStoreConfig {
        self.restore.config_as(tenant)
    }

    /// Service-level and per-tenant counters plus each tenant's
    /// repository statistics.
    pub fn stats(&self) -> ServiceStats {
        let (queued, running, submitted, completed, rejected, mut tenants) = {
            let st = self.shared.lock();
            let tenants: Vec<(String, crate::scheduler::TenantCounters, usize)> = st
                .per_tenant
                .iter()
                .map(|(k, c)| (k.clone(), c.clone(), st.tenant_load.get(k).copied().unwrap_or(0)))
                .collect();
            (st.queue.len(), st.inflight.len(), st.submitted, st.completed, st.rejected, tenants)
        };
        tenants.sort_by(|a, b| a.0.cmp(&b.0));
        let tenants = tenants
            .into_iter()
            .map(|(tenant, c, inflight)| {
                let repository =
                    self.restore.stats_as(if tenant.is_empty() { None } else { Some(&tenant) });
                TenantServiceStats {
                    tenant,
                    submitted: c.submitted,
                    completed: c.completed,
                    rejected: c.rejected,
                    inflight,
                    repository,
                }
            })
            .collect();
        ServiceStats {
            workers: self.workers.len(),
            queued,
            running,
            submitted,
            completed,
            rejected,
            tenants,
        }
    }

    /// Stop accepting new work, finish everything queued, and join the
    /// worker pool.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
            // A paused service must still drain on shutdown.
            st.paused = false;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for RestoreService {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_inner();
        }
    }
}

fn worker_loop(restore: Arc<ReStore>, shared: Arc<Shared>, cross_workflow: bool) {
    // A workflow that writes a repository-registered path is a
    // scheduling barrier: reuse rewriting could make any other workflow
    // Load that path at run time, invisibly to submit-time footprints.
    let is_barrier = |q: &QueuedWorkflow| q.footprint.writes.iter().any(|w| restore.serves_path(w));
    loop {
        let (entry, barrier) = {
            let mut st = shared.lock();
            loop {
                if st.shutdown && st.queue.is_empty() {
                    return;
                }
                if !st.paused {
                    if let Some((i, barrier)) = pick(&st, cross_workflow, is_barrier) {
                        let entry = st.queue.remove(i).expect("picked index exists");
                        st.inflight.push((entry.id, entry.footprint.clone()));
                        st.inflight_barriers += usize::from(barrier);
                        break (entry, barrier);
                    }
                }
                st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let QueuedWorkflow { id, tenant, wf, ticket, .. } = entry;
        // Contain panics: a poisoned workflow must not kill the worker or
        // leave its footprint stuck in the in-flight set (which would
        // block every conflicting submission forever).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            restore.execute_workflow_as(tenant.as_deref(), wf)
        }))
        .unwrap_or_else(|_| Err(restore_common::Error::Job("workflow execution panicked".into())))
        .map_err(ServiceError::Query);
        {
            let mut st = shared.lock();
            st.inflight.retain(|(fid, _)| *fid != id);
            st.inflight_barriers -= usize::from(barrier);
            let key = tenant_key(tenant.as_deref());
            if let Some(load) = st.tenant_load.get_mut(&key) {
                *load = load.saturating_sub(1);
            }
            st.completed += 1;
            st.per_tenant.entry(key).or_default().completed += 1;
        }
        // A completion can unblock a conflicting queue entry for every
        // waiting worker, and `drain` may be watching.
        shared.work.notify_all();
        shared.idle.notify_all();
        ticket.complete(result);
    }
}
