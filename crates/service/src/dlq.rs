//! Service surface of the dead-letter queue: inspection and redrive.
//!
//! The queue itself lives in the driver (journal-durable, shipped to
//! standbys; see `restore_core::dlq`); workers park exhausted
//! submissions there when a tenant's policy says
//! [`FailureDisposition::Dlq`](restore_core::FailureDisposition::Dlq).
//! This module adds the operator workflow: list what's parked, and
//! re-drive it through the service's normal admission path.

use crate::ticket::SubmitHandle;
use crate::{RestoreService, ServiceError};
use restore_core::DlqEntry;

/// What one [`RestoreService::redrive`] pass accomplished.
#[derive(Debug)]
pub struct RedriveOutcome {
    /// Handles of re-admitted entries, oldest first; wait on them like
    /// fresh submissions.
    pub admitted: Vec<SubmitHandle>,
    /// The first entry that failed admission (its id and the admission
    /// error); it and everything after it stay parked. `None` when the
    /// whole queue was re-driven.
    pub stopped: Option<(u64, ServiceError)>,
}

impl RestoreService {
    /// The tenant's dead-letter queue, oldest first. Each entry carries
    /// the exact compiled workflow that failed, the attempts it
    /// consumed, and the final error.
    pub fn dlq_entries(&self, tenant: Option<&str>) -> Vec<DlqEntry> {
        self.driver().dlq_entries_as(tenant)
    }

    /// Depth of the tenant's dead-letter queue.
    pub fn dlq_depth(&self, tenant: Option<&str>) -> usize {
        self.driver().dlq_depth_as(tenant)
    }

    /// Re-drive the tenant's dead-letter queue through **normal
    /// admission**: each parked workflow is re-submitted with the exact
    /// compiled plans and temporaries that originally failed, so a
    /// redrive is byte-identical to a fresh submission of the same
    /// workflow — same queueing, same conflict scheduling, same failure
    /// policy if it fails again. An entry is acked (durably removed,
    /// journaled) only *after* its re-submission is admitted; on the
    /// first admission failure (queue full, tenant at cap, breaker
    /// open, shutdown) the pass stops and the rest stay parked — a
    /// redrive can never lose work.
    pub fn redrive(&self, tenant: Option<&str>) -> RedriveOutcome {
        let mut admitted = Vec::new();
        for entry in self.driver().dlq_entries_as(tenant) {
            match self.submit_workflow(tenant, entry.wf.clone()) {
                Ok(handle) => {
                    self.driver().dlq_ack_as(tenant, &[entry.id]);
                    self.obs.dlq_redrives.inc();
                    admitted.push(handle);
                }
                Err(e) => return RedriveOutcome { admitted, stopped: Some((entry.id, e)) },
            }
        }
        RedriveOutcome { admitted, stopped: None }
    }
}
