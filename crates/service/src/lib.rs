//! # restore-service
//!
//! A multi-tenant query-submission service over the shared
//! [`ReStore`](restore_core::ReStore) driver — the "long-lived system"
//! deployment the paper sketches in
//! §3/§6, where ReStore sits between the query compiler and the cluster
//! and serves *many submitted workflows over time*.
//!
//! The driver itself is a passive `&self` session object: callers bring
//! their own threads and there is no queueing, fairness, or isolation.
//! This crate adds the serving layer:
//!
//! ```text
//!   submit(tenant, query) ──► admission control ──► bounded queue
//!                              │ queue full → Overloaded               │
//!                              │ tenant at cap → TenantOverloaded      ▼
//!                                                  cross-workflow scheduler
//!                                                  (footprint conflict probe)
//!                                                               │
//!                                            fixed worker pool ─┴─► ReStore
//!                                                  (per-tenant namespaces)
//! ```
//!
//! * **Admission control** — the submission queue is bounded
//!   ([`ServiceConfig::queue_depth`]); a full queue *sheds* load with
//!   [`ServiceError::Overloaded`] instead of blocking the caller, and a
//!   tenant exceeding [`ServiceConfig::max_inflight_per_tenant`] is
//!   rejected with [`ServiceError::TenantOverloaded`] so one tenant
//!   cannot monopolize the pool.
//! * **Cross-workflow scheduling** — workers may dispatch a queued
//!   workflow ahead of earlier ones whenever its DFS footprint
//!   ([`CompiledWorkflow::io_path_sets`]) conflicts with neither the
//!   in-flight workflows nor any earlier-queued workflow still waiting.
//!   Conflicting workflows keep their submission order, so results are
//!   byte-identical to sequential submission; disjoint workflows overlap
//!   freely, extending wave parallelism *within* a workflow to
//!   throughput *across* workflows.
//! * **Tenant isolation** — every submission names a tenant; the driver
//!   keeps one repository namespace per tenant, so reuse, candidate
//!   materialization, and eviction sweeps never cross tenants.
//! * **Per-tenant policy** — [`RestoreService::set_tenant_config`]
//!   gives a tenant its own `ReStoreConfig` (heuristic, §5 selection,
//!   retention); its workflows run under that policy while everyone
//!   else follows the global default.
//! * **Durability** — two modes. *Continuous*:
//!   [`RestoreService::checkpoint_begin`] turns on the driver's
//!   snapshot journal and anchors a base checkpoint, after which
//!   [`RestoreService::checkpoint_incremental`] captures deltas
//!   proportional to what changed — **without pausing dispatch or
//!   draining in-flight workflows** — and folds the journal into a
//!   fresh base when it outgrows
//!   [`CheckpointConfig::compact_ratio`];
//!   [`RestoreService::restore_incremental`] rebuilds from base +
//!   segments, tolerating a torn tail from a crash mid-append.
//!   *Full*: [`RestoreService::snapshot`] drain-quiesces the pool and
//!   serializes the whole session (every namespace, policies,
//!   counters) as `restore-state v3`; [`RestoreService::restore`]
//!   rebuilds a service from such a snapshot with warm-hit parity
//!   after a process restart.
//!
//! [`CompiledWorkflow::io_path_sets`]: restore_dataflow::CompiledWorkflow::io_path_sets

mod dlq;
mod failure;
mod obs;
mod scheduler;
mod service;
mod standby;
mod ticket;

pub use dlq::RedriveOutcome;
pub use failure::FaultInjector;
pub use restore_core::{DlqEntry, FailureDisposition, FailurePolicy};
pub use service::{
    CheckpointConfig, CheckpointOutcome, CheckpointSet, RestoreService, ServiceConfig,
    ServiceStats, TenantServiceStats,
};
pub use standby::Standby;
pub use ticket::SubmitHandle;

/// Errors surfaced by the service layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The bounded submission queue is full; the query was shed, not
    /// queued. Retry later or raise [`ServiceConfig::queue_depth`].
    Overloaded {
        /// The configured queue bound that was hit.
        queue_depth: usize,
    },
    /// The tenant already has `max_inflight` workflows queued or
    /// running.
    TenantOverloaded { tenant: String, max_inflight: usize },
    /// The tenant's circuit breaker is open (too many recent failures,
    /// see [`restore_core::FailurePolicy`]): the submission was shed
    /// before queueing, without consuming a worker slot. Retry after
    /// the tenant's cooldown; half-open probes re-test health
    /// automatically.
    CircuitOpen {
        /// Tenant key (empty string = the default namespace).
        tenant: String,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// [`RestoreService::checkpoint_incremental`] was called before
    /// [`RestoreService::checkpoint_begin`].
    CheckpointsNotEnabled,
    /// Compilation or execution of the query failed.
    Query(restore_common::Error),
    /// Replication shipping, replay, or promotion failed (see
    /// [`restore_core::ReplicationError`] for the divergence taxonomy).
    Replication(restore_core::ReplicationError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { queue_depth } => {
                write!(f, "service overloaded: submission queue full ({queue_depth} deep)")
            }
            ServiceError::TenantOverloaded { tenant, max_inflight } => {
                write!(f, "tenant {tenant:?} at its in-flight limit ({max_inflight})")
            }
            ServiceError::CircuitOpen { tenant } => {
                write!(f, "tenant {tenant:?} circuit breaker open: submission shed")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::CheckpointsNotEnabled => {
                write!(f, "incremental checkpoints not enabled: call checkpoint_begin first")
            }
            ServiceError::Query(e) => write!(f, "query failed: {e}"),
            ServiceError::Replication(e) => write!(f, "replication failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}
