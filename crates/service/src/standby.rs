//! The warm-standby endpoint: a [`ReplicaSession`] tailing a
//! replication transport, promotable into a serving
//! [`RestoreService`].
//!
//! A standby is a fresh driver session in (typically) another process
//! slot, continuously replaying the primary's shipped journal records
//! — its repository, provenance, and counters track the primary at
//! shipping granularity. **Promotion** is then the whole failover
//! story: stop tailing, drain whatever shipments are still queued,
//! verify seq parity with everything the primary announced, and start
//! a worker pool over the already-warm session. No disk is touched —
//! the state was never serialized to a checkpoint file on this path.
//!
//! Divergence handling is delegated to the replay layer: when
//! [`ReplicaSession::apply_shipment`] reports a seq gap or a lineage
//! mismatch, the tailer requests a full-base resync over the
//! transport's back channel and keeps tailing — the primary's next
//! pump ships a fresh base.

use crate::{RestoreService, ServiceConfig, ServiceError};
use restore_core::{ReStore, ReplicaSession, ReplicationError, ReplicationTransport};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A standby session attached to the far end of a replication
/// transport. Build with [`Standby::attach`] (background tail thread)
/// or [`Standby::attach_manual`] (caller-driven, deterministic);
/// promote with [`Standby::promote`]. Dropping a standby stops the
/// tailer and closes the transport, which detaches it from the primary
/// at its next shipping beat.
pub struct Standby {
    replica: Arc<ReplicaSession>,
    transport: Arc<dyn ReplicationTransport>,
    stop: Arc<AtomicBool>,
    tailer: Option<JoinHandle<()>>,
}

impl Standby {
    /// Attach `restore` (a fresh session over the standby's engine) as
    /// a continuously tailing standby: a background thread receives and
    /// applies shipments as they arrive, requesting a resync on any
    /// divergence.
    pub fn attach(restore: ReStore, transport: Arc<dyn ReplicationTransport>) -> Standby {
        let mut standby = Standby::attach_manual(restore, transport);
        let replica = standby.replica.clone();
        let transport = standby.transport.clone();
        let stop = standby.stop.clone();
        standby.tailer = Some(std::thread::spawn(move || {
            while !stop.load(SeqCst) {
                match transport.recv(Duration::from_millis(25)) {
                    Some(shipment) if replica.apply_shipment(&shipment).is_err() => {
                        // Seq gap, diverged lineage, corruption: the
                        // remedy is always a full-base resync.
                        transport.request_resync();
                    }
                    Some(_) => {}
                    None if transport.is_closed() => break,
                    None => {}
                }
            }
        }));
        standby
    }

    /// Attach without a tail thread: the caller drives replay with
    /// [`Standby::tail_once`] / [`Standby::tail_all`]. Deterministic
    /// tests and benchmarks use this to control exactly when (and how
    /// much) replay happens.
    pub fn attach_manual(restore: ReStore, transport: Arc<dyn ReplicationTransport>) -> Standby {
        Standby {
            replica: Arc::new(ReplicaSession::over(Arc::new(restore))),
            transport,
            stop: Arc::new(AtomicBool::new(false)),
            tailer: None,
        }
    }

    /// The replay-side session state (applied seq, sync status, resync
    /// count, the wrapped driver).
    pub fn replica(&self) -> &Arc<ReplicaSession> {
        &self.replica
    }

    /// Apply one queued shipment, if any. Divergence requests a resync
    /// (like the background tailer) and surfaces the typed error.
    pub fn tail_once(&self) -> Result<bool, ReplicationError> {
        let Some(shipment) = self.transport.try_recv() else {
            return Ok(false);
        };
        match self.replica.apply_shipment(&shipment) {
            Ok(()) => Ok(true),
            Err(e) => {
                self.transport.request_resync();
                Err(e)
            }
        }
    }

    /// Drain the replay queue; returns shipments consumed. Divergent
    /// shipments request a resync and are dropped (the healing base is
    /// usually already behind them in the queue), matching the
    /// background tailer's behavior.
    pub fn tail_all(&self) -> usize {
        let mut consumed = 0;
        while let Some(shipment) = self.transport.try_recv() {
            consumed += 1;
            if self.replica.apply_shipment(&shipment).is_err() {
                self.transport.request_resync();
            }
        }
        consumed
    }

    /// Block until the standby is synced, has applied everything the
    /// primary announced, and the queue is empty — or `timeout` passes.
    /// Returns whether it caught up.
    pub fn wait_caught_up(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.replica.is_synced()
                && self.transport.queued() == 0
                && self.replica.verify_parity().is_ok()
            {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Promote this standby into a serving primary: stop the tailer,
    /// drain every shipment still queued, close the transport, verify
    /// seq parity (every record the primary announced was applied — a
    /// shortfall is a typed [`ServiceError::Replication`]), and start a
    /// worker pool over the warm session. The session's journal seq
    /// continues from the replayed stream, so the promoted service can
    /// itself checkpoint or replicate onward without a re-anchor.
    pub fn promote(mut self, config: ServiceConfig) -> Result<RestoreService, ServiceError> {
        self.halt_tailer();
        while let Some(shipment) = self.transport.try_recv() {
            self.replica.apply_shipment(&shipment).map_err(ServiceError::Replication)?;
        }
        self.transport.close();
        self.replica.verify_parity().map_err(ServiceError::Replication)?;
        let driver = self.replica.driver().clone();
        Ok(RestoreService::over(driver, config))
    }

    fn halt_tailer(&mut self) {
        self.stop.store(true, SeqCst);
        if let Some(tailer) = self.tailer.take() {
            let _ = tailer.join();
        }
    }
}

impl Drop for Standby {
    fn drop(&mut self) {
        self.halt_tailer();
        // Detach from the primary: its next shipping beat observes the
        // closed link and drops the journal tap.
        self.transport.close();
    }
}
