//! Completion tickets: futures-free handles on submitted workflows.

use crate::ServiceError;
use restore_core::QueryExecution;
use std::sync::{Condvar, Mutex};

/// Shared slot a worker fills when the workflow finishes.
#[derive(Debug, Default)]
pub(crate) struct Ticket {
    slot: Mutex<Option<Result<QueryExecution, ServiceError>>>,
    done: Condvar,
}

impl Ticket {
    pub(crate) fn complete(&self, result: Result<QueryExecution, ServiceError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<QueryExecution, ServiceError> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn is_done(&self) -> bool {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).is_some()
    }
}

/// Handle on one submitted workflow. Obtained from
/// [`RestoreService::submit`](crate::RestoreService::submit); redeem it
/// with [`SubmitHandle::wait`].
#[derive(Debug)]
pub struct SubmitHandle {
    pub(crate) id: u64,
    pub(crate) tenant: Option<String>,
    pub(crate) ticket: std::sync::Arc<Ticket>,
}

impl SubmitHandle {
    /// Service-assigned submission id (monotonic per service).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tenant this submission executes as.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Has the workflow finished (successfully or not)?
    pub fn is_done(&self) -> bool {
        self.ticket.is_done()
    }

    /// Block until the workflow completes and return its result. The
    /// handle is consumed: the execution result moves to the caller.
    pub fn wait(self) -> Result<QueryExecution, ServiceError> {
        self.ticket.wait()
    }
}
