//! Completion tickets: futures-free handles on submitted workflows.

use crate::ServiceError;
use restore_core::QueryExecution;
use restore_telemetry::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Shared slot a worker fills when the workflow finishes.
#[derive(Debug, Default)]
pub(crate) struct Ticket {
    slot: Mutex<Option<Result<QueryExecution, ServiceError>>>,
    done: Condvar,
    /// Driver tick of the completed execution (0 = not yet known or the
    /// workflow failed) — the key into the reuse-decision trace.
    tick: AtomicU64,
    /// Records the submitter's blocking time in [`SubmitHandle::wait`].
    /// The default (detached) histogram records into the void, so
    /// tickets built outside the service (scheduler tests) cost nothing.
    wait_hist: Histogram,
}

impl Ticket {
    /// A ticket whose wait time records into `wait_hist`.
    pub(crate) fn with_wait_hist(wait_hist: Histogram) -> Self {
        Ticket { wait_hist, ..Default::default() }
    }

    pub(crate) fn complete(&self, result: Result<QueryExecution, ServiceError>) {
        if let Ok(exec) = &result {
            self.tick.store(exec.tick, Ordering::SeqCst);
        }
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(result);
        self.done.notify_all();
    }

    /// The completed execution's driver tick; `None` until the workflow
    /// finishes successfully.
    pub(crate) fn tick(&self) -> Option<u64> {
        match self.tick.load(Ordering::SeqCst) {
            0 => None,
            t => Some(t),
        }
    }

    fn wait(&self) -> Result<QueryExecution, ServiceError> {
        let t0 = Instant::now();
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            // The result stays in the slot so `wait` is idempotent and
            // the handle remains usable afterwards (e.g. for
            // `RestoreService::trace`).
            if let Some(result) = slot.as_ref() {
                let result = result.clone();
                drop(slot);
                self.wait_hist.record_elapsed(t0);
                return result;
            }
            slot = self.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn is_done(&self) -> bool {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).is_some()
    }
}

/// Handle on one submitted workflow. Obtained from
/// [`RestoreService::submit`](crate::RestoreService::submit); redeem it
/// with [`SubmitHandle::wait`].
#[derive(Debug)]
pub struct SubmitHandle {
    pub(crate) id: u64,
    pub(crate) tenant: Option<String>,
    pub(crate) ticket: std::sync::Arc<Ticket>,
}

impl SubmitHandle {
    /// Service-assigned submission id (monotonic per service).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tenant this submission executes as.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Has the workflow finished (successfully or not)?
    pub fn is_done(&self) -> bool {
        self.ticket.is_done()
    }

    /// Block until the workflow completes and return its result.
    /// Idempotent: the handle stays usable, so a completed submission
    /// can still be explained with
    /// [`RestoreService::trace`](crate::RestoreService::trace).
    pub fn wait(&self) -> Result<QueryExecution, ServiceError> {
        self.ticket.wait()
    }
}
