//! Service-layer observability: span histograms around the serving
//! pipeline (queue wait, conflict probe, worker run, ticket wait) and
//! checkpoint/compaction accounting. Everything registers into the
//! driver session's registry, so [`RestoreService::render_metrics`]
//! (see [`crate::RestoreService`]) exposes driver and service families
//! from one place.

use restore_telemetry::{Counter, Histogram, Registry};

/// Instruments shared by the submit path, the worker pool, and the
/// checkpoint keeper.
pub(crate) struct ServiceObs {
    /// Submission → dispatch latency (time spent queued).
    pub queue_wait: Histogram,
    /// One scheduler `pick` evaluation under the state lock.
    pub conflict_probe: Histogram,
    /// Workflow execution on a worker (the driver call).
    pub worker_run: Histogram,
    /// Submitter blocked in [`crate::SubmitHandle::wait`].
    pub ticket_wait: Histogram,
    /// Worker wait rounds spent parked behind an in-flight barrier
    /// workflow (dispatch frozen until it completes).
    pub barrier_stalls: Counter,
    /// One incremental delta capture (journal cut + segment append).
    pub checkpoint_capture: Histogram,
    /// One journal-into-base compaction fold.
    pub checkpoint_compact: Histogram,
    /// Compaction folds performed.
    pub compactions: Counter,
    /// Failed attempts re-enqueued for a backoff retry.
    pub retries: Counter,
    /// Submissions parked in a dead-letter queue after exhausting
    /// retries.
    pub dlq_puts: Counter,
    /// Dead-letter entries re-driven through normal admission.
    pub dlq_redrives: Counter,
    /// Submissions shed by an open (or probe-saturated half-open)
    /// circuit breaker.
    pub circuit_shed: Counter,
}

impl ServiceObs {
    pub(crate) fn new(registry: &Registry) -> Self {
        ServiceObs {
            queue_wait: registry.histogram(
                "service_queue_wait_seconds",
                "Time a submission spent queued before dispatch",
                &[],
                1e-9,
            ),
            conflict_probe: registry.histogram(
                "service_conflict_probe_seconds",
                "Scheduler conflict-probe (pick) latency",
                &[],
                1e-9,
            ),
            worker_run: registry.histogram(
                "service_worker_run_seconds",
                "Workflow execution time on a worker",
                &[],
                1e-9,
            ),
            ticket_wait: registry.histogram(
                "service_ticket_wait_seconds",
                "Time a submitter blocked waiting on its ticket",
                &[],
                1e-9,
            ),
            barrier_stalls: registry.counter(
                "service_barrier_stalls_total",
                "Worker wait rounds spent parked behind a barrier workflow",
                &[],
            ),
            checkpoint_capture: registry.histogram(
                "restore_checkpoint_capture_seconds",
                "Incremental checkpoint capture duration",
                &[],
                1e-9,
            ),
            checkpoint_compact: registry.histogram(
                "restore_checkpoint_compact_seconds",
                "Journal-into-base compaction duration",
                &[],
                1e-9,
            ),
            compactions: registry.counter(
                "restore_checkpoint_compactions_total",
                "Journal-into-base compaction folds performed",
                &[],
            ),
            retries: registry.counter(
                "restore_retries_total",
                "Failed attempts re-enqueued for a backoff retry",
                &[],
            ),
            dlq_puts: registry.counter(
                "restore_dlq_puts_total",
                "Submissions dead-lettered after exhausting retries",
                &[],
            ),
            dlq_redrives: registry.counter(
                "restore_dlq_redrives_total",
                "Dead-letter entries re-driven through admission",
                &[],
            ),
            circuit_shed: registry.counter(
                "restore_circuit_shed_total",
                "Submissions shed by an open circuit breaker",
                &[],
            ),
        }
    }
}
