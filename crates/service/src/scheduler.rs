//! Cross-workflow scheduling state: the bounded queue, the in-flight
//! set, and the conflict-aware pick rule.

use crate::failure::TenantFailureState;
use crate::ticket::Ticket;
use restore_core::footprints_conflict;
use restore_dataflow::{CompiledWorkflow, WorkflowIoPaths};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// One queued submission.
pub(crate) struct QueuedWorkflow {
    pub id: u64,
    pub tenant: Option<String>,
    pub wf: CompiledWorkflow,
    pub footprint: WorkflowIoPaths,
    pub ticket: Arc<Ticket>,
    /// When the submission entered the queue (feeds the queue-wait
    /// histogram at dispatch).
    pub enqueued: Instant,
    /// Execution attempts already consumed (0 = never dispatched; a
    /// retry re-enters the queue with this bumped).
    pub attempt: u32,
    /// Backoff deadline: the entry is not dispatchable before this
    /// instant (`None` = immediately runnable). A waiting entry still
    /// holds its place in its conflict group — conflicting submissions
    /// never overtake a backing-off retry.
    pub not_before: Option<Instant>,
    /// This submission is a half-open breaker probe; its outcome feeds
    /// the breaker verdict instead of the sliding window.
    pub probe: bool,
}

/// Per-tenant serving counters (the `""` key is the default namespace).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct TenantCounters {
    pub submitted: u64,
    pub completed: u64,
    pub rejected: u64,
}

/// Everything the workers and the submit path share, under one mutex.
#[derive(Default)]
pub(crate) struct SchedulerState {
    pub queue: VecDeque<QueuedWorkflow>,
    /// Footprints of workflows currently executing on a worker.
    pub inflight: Vec<(u64, WorkflowIoPaths)>,
    /// Running workflows that write a repository-registered path (see
    /// [`pick`]): while one is in flight, nothing else dispatches.
    pub inflight_barriers: usize,
    /// Queued + running workflows per tenant key.
    pub tenant_load: HashMap<String, usize>,
    pub per_tenant: HashMap<String, TenantCounters>,
    /// Per-tenant breaker + outcome window (created on first use for
    /// tenants whose policy enables the breaker).
    pub failure: HashMap<String, TenantFailureState>,
    pub paused: bool,
    pub shutdown: bool,
    pub submitted: u64,
    pub completed: u64,
    pub rejected: u64,
}

/// The map key for a tenant (`None` = default namespace).
pub(crate) fn tenant_key(tenant: Option<&str>) -> String {
    tenant.unwrap_or("").to_string()
}

/// Pick the queue index the next free worker should run, or `None` when
/// nothing is currently runnable.
///
/// With `cross_workflow` enabled, the queue is scanned in FIFO order and
/// the first entry whose footprint conflicts with neither the in-flight
/// workflows nor any earlier-queued (still waiting) workflow is chosen.
/// Skipped entries add their footprints to the blocked set, so two
/// conflicting submissions always execute in submission order — the
/// overlap is only ever between workflows that cannot observe each
/// other's files.
///
/// Without it, only the queue head is eligible, and only once it no
/// longer conflicts with anything in flight (strict FIFO dispatch).
///
/// `is_barrier` flags workflows whose declared writes hit a
/// repository-registered path (`ReStore::serves_path`). Reuse rewriting
/// can splice Loads of registered paths into *any* workflow at run time
/// — reads the submit-time footprint cannot see — so a barrier workflow
/// orders against everything: it dispatches only when nothing is in
/// flight and nothing earlier waits, nothing overtakes it, and while it
/// runs nothing else starts.
/// A retry backing off (`not_before` in the future at `now`) is not
/// dispatchable, but it keeps its place: its footprint joins the
/// blocked set so conflicting later entries cannot overtake it, and a
/// backing-off barrier still freezes everything behind it.
///
/// Returns `(queue index, is_barrier)`; the caller must use the
/// returned verdict for its barrier accounting rather than re-probing
/// (the probe reads driver state that mutates concurrently, so a second
/// evaluation could disagree with the decision this dispatch was made
/// under).
pub(crate) fn pick(
    state: &SchedulerState,
    cross_workflow: bool,
    now: Instant,
    is_barrier: impl Fn(&QueuedWorkflow) -> bool,
) -> Option<(usize, bool)> {
    if state.inflight_barriers > 0 {
        return None;
    }
    let mut blocked: Vec<&WorkflowIoPaths> = state.inflight.iter().map(|(_, f)| f).collect();
    for (i, q) in state.queue.iter().enumerate() {
        let ready = q.not_before.is_none_or(|t| t <= now);
        if is_barrier(q) {
            return if ready && blocked.is_empty() { Some((i, true)) } else { None };
        }
        if ready && blocked.iter().all(|b| !footprints_conflict(b, &q.footprint)) {
            return Some((i, false));
        }
        if !cross_workflow {
            return None;
        }
        blocked.push(&q.footprint);
    }
    None
}

/// The earliest backoff deadline of any queued entry still in the
/// future at `now` — how long a worker finding nothing runnable should
/// bound its wait, so a retry whose delay expires without other
/// activity still dispatches on time.
pub(crate) fn next_ready_deadline(state: &SchedulerState, now: Instant) -> Option<Instant> {
    state.queue.iter().filter_map(|q| q.not_before).filter(|t| *t > now).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_dataflow::WorkflowIoPaths;

    fn fp(reads: &[&str], writes: &[&str]) -> WorkflowIoPaths {
        WorkflowIoPaths {
            reads: reads.iter().map(|s| s.to_string()).collect(),
            writes: writes.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn queued(id: u64, footprint: WorkflowIoPaths) -> QueuedWorkflow {
        QueuedWorkflow {
            id,
            tenant: None,
            wf: CompiledWorkflow { jobs: Vec::new(), tmp_paths: Vec::new() },
            footprint,
            ticket: Arc::default(),
            enqueued: Instant::now(),
            attempt: 0,
            not_before: None,
            probe: false,
        }
    }

    #[test]
    fn disjoint_workflows_overlap() {
        let mut st = SchedulerState::default();
        st.inflight.push((1, fp(&["/in/a"], &["/out/a"])));
        st.queue.push_back(queued(2, fp(&["/in/b"], &["/out/b"])));
        assert_eq!(pick(&st, true, Instant::now(), |_| false), Some((0, false)));
        assert_eq!(pick(&st, false, Instant::now(), |_| false), Some((0, false)));
    }

    #[test]
    fn read_of_inflight_write_blocks() {
        let mut st = SchedulerState::default();
        st.inflight.push((1, fp(&["/in/a"], &["/out/a"])));
        st.queue.push_back(queued(2, fp(&["/out/a"], &["/out/b"])));
        assert_eq!(pick(&st, true, Instant::now(), |_| false), None);
    }

    #[test]
    fn later_disjoint_workflow_jumps_blocked_head() {
        let mut st = SchedulerState::default();
        st.inflight.push((1, fp(&["/in/a"], &["/out/a"])));
        // Head conflicts with in-flight; the next entry is disjoint.
        st.queue.push_back(queued(2, fp(&["/out/a"], &["/out/b"])));
        st.queue.push_back(queued(3, fp(&["/in/c"], &["/out/c"])));
        assert_eq!(
            pick(&st, true, Instant::now(), |_| false),
            Some((1, false)),
            "cross-workflow mode overtakes a blocked head"
        );
        assert_eq!(
            pick(&st, false, Instant::now(), |_| false),
            None,
            "strict FIFO waits for the head"
        );
    }

    #[test]
    fn conflicting_queue_entries_keep_submission_order() {
        let mut st = SchedulerState::default();
        st.inflight.push((1, fp(&[], &["/out/a"])));
        // Entry 2 is blocked by in-flight; entry 3 writes what 2 reads,
        // so it must not overtake 2 even though it is disjoint from the
        // in-flight workflow.
        st.queue.push_back(queued(2, fp(&["/out/a"], &["/out/b"])));
        st.queue.push_back(queued(3, fp(&[], &["/out/b"])));
        assert_eq!(
            pick(&st, true, Instant::now(), |_| false),
            None,
            "order within a conflict group is preserved"
        );
    }

    #[test]
    fn empty_queue_picks_nothing() {
        let st = SchedulerState::default();
        assert_eq!(pick(&st, true, Instant::now(), |_| false), None);
    }

    #[test]
    fn barrier_orders_against_everything() {
        let is_barrier = |q: &QueuedWorkflow| q.id == 9;
        // Nothing outstanding: the barrier dispatches.
        let mut st = SchedulerState::default();
        st.queue.push_back(queued(9, fp(&[], &["/repo/x"])));
        st.queue.push_back(queued(2, fp(&[], &["/out/b"])));
        assert_eq!(pick(&st, true, Instant::now(), is_barrier), Some((0, true)));

        // Anything in flight — even with a disjoint footprint — holds
        // the barrier back, and nothing overtakes it.
        st.inflight.push((1, fp(&[], &["/out/elsewhere"])));
        assert_eq!(pick(&st, true, Instant::now(), is_barrier), None);
        st.inflight.clear();

        // An in-flight barrier freezes all dispatch.
        st.inflight_barriers = 1;
        assert_eq!(pick(&st, true, Instant::now(), |_| false), None);
    }
}
