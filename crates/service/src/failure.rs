//! Per-tenant failure enforcement: the sliding outcome window, the
//! three-state circuit breaker, and the fault-injection hook.
//!
//! The *knobs* live on the driver's config
//! ([`restore_core::FailurePolicy`], journaled and shipped to standbys
//! like every per-tenant setting); this module is the *machinery* the
//! serving layer runs them with. One [`TenantFailureState`] per tenant
//! lives inside the scheduler's state mutex — admission verdicts and
//! outcome records are already under that lock, so the breaker adds no
//! locking of its own.
//!
//! ```text
//!            failures in window ≥ threshold
//!   Closed ────────────────────────────────► Open
//!     ▲                                        │ cooldown elapses
//!     │ probe successes ≥ success_threshold    ▼ (next submission
//!     └──────────────────────────── HalfOpen ◄── becomes a probe)
//!                                      │ any probe fails
//!                                      └──────────► Open (cooldown anew)
//! ```
//!
//! While **open**, submissions are shed with
//! [`ServiceError::CircuitOpen`](crate::ServiceError::CircuitOpen)
//! before they reach the queue — a flapping tenant costs one map lookup
//! per submission instead of a worker slot. While **half-open**, at
//! most [`breaker_half_open_probes`] submissions run concurrently as
//! probes; everything beyond the budget is shed until the probes
//! decide.
//!
//! [`breaker_half_open_probes`]: restore_core::FailurePolicy::breaker_half_open_probes

use restore_core::FailurePolicy;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Deterministic fault injection on the worker execution path (the
/// test/ops hook behind
/// [`RestoreService::set_fault_injector`](crate::RestoreService::set_fault_injector)).
///
/// Before each execution attempt the worker asks the injector whether
/// to fail it; `Some(reason)` fails the attempt with a `Job` error
/// carrying `reason` — *before* the driver runs, so the injected
/// failure never mutates repository or DFS state. Injection is keyed on
/// (tenant, submission id, attempt), which lets a test script exact
/// schedules: "fail tenant A's first two attempts, then heal".
pub trait FaultInjector: Send + Sync {
    /// Return `Some(reason)` to fail this attempt (`attempt` is 0-based:
    /// 0 is the initial execution, 1 the first retry, …).
    fn inject(&self, tenant: Option<&str>, submission: u64, attempt: u32) -> Option<String>;
}

/// The breaker's admission verdict for one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Admit; `probe == true` marks a half-open probe whose outcome
    /// decides the breaker's fate.
    Admit { probe: bool },
    /// Shed with `CircuitOpen` before queueing.
    Shed,
}

enum BreakerCore {
    Closed,
    Open { until: Instant },
    HalfOpen { inflight: u32, successes: u32 },
}

/// One tenant's failure-tracking state (kept inside the scheduler
/// mutex, keyed by tenant key; see the module docs).
pub(crate) struct TenantFailureState {
    /// Recent attempt outcomes, newest last (`true` = failure). Only
    /// maintained while closed — a trip clears it so the tenant
    /// re-earns a full window after recovery.
    outcomes: VecDeque<bool>,
    state: BreakerCore,
}

impl Default for TenantFailureState {
    fn default() -> Self {
        TenantFailureState { outcomes: VecDeque::new(), state: BreakerCore::Closed }
    }
}

impl TenantFailureState {
    /// Admission gate, called on the submit path under the scheduler
    /// lock. An open breaker whose cooldown has elapsed transitions to
    /// half-open here, admitting the caller as the first probe.
    pub(crate) fn admit(&mut self, policy: &FailurePolicy, now: Instant) -> Admission {
        if !policy.breaker_enabled() {
            return Admission::Admit { probe: false };
        }
        match self.state {
            BreakerCore::Closed => Admission::Admit { probe: false },
            BreakerCore::Open { until } => {
                if now >= until {
                    self.state = BreakerCore::HalfOpen { inflight: 1, successes: 0 };
                    Admission::Admit { probe: true }
                } else {
                    Admission::Shed
                }
            }
            BreakerCore::HalfOpen { inflight, successes } => {
                if inflight < policy.breaker_half_open_probes.max(1) {
                    self.state = BreakerCore::HalfOpen { inflight: inflight + 1, successes };
                    Admission::Admit { probe: true }
                } else {
                    Admission::Shed
                }
            }
        }
    }

    /// Record one attempt outcome (worker completion path, under the
    /// scheduler lock). Probe outcomes drive the half-open verdict;
    /// ordinary outcomes feed the closed window. Outcomes landing while
    /// open or half-open from non-probe submissions (admitted before
    /// the trip) are ignored — the probes alone decide recovery.
    pub(crate) fn record(
        &mut self,
        policy: &FailurePolicy,
        probe: bool,
        failed: bool,
        now: Instant,
    ) {
        if !policy.breaker_enabled() {
            self.outcomes.clear();
            self.state = BreakerCore::Closed;
            return;
        }
        if probe {
            if let BreakerCore::HalfOpen { inflight, successes } = self.state {
                if failed {
                    self.trip(policy, now);
                } else {
                    let successes = successes + 1;
                    if successes >= policy.breaker_success_threshold.max(1) {
                        self.state = BreakerCore::Closed;
                        self.outcomes.clear();
                    } else {
                        self.state = BreakerCore::HalfOpen {
                            inflight: inflight.saturating_sub(1),
                            successes,
                        };
                    }
                }
            }
            return;
        }
        if matches!(self.state, BreakerCore::Closed) {
            self.outcomes.push_back(failed);
            while self.outcomes.len() > policy.failure_window.max(1) as usize {
                self.outcomes.pop_front();
            }
            let failures = self.outcomes.iter().filter(|&&f| f).count() as u32;
            if failures >= policy.failure_threshold {
                self.trip(policy, now);
            }
        }
    }

    /// A state inherited from a primary whose breaker was open at
    /// promotion (the driver replayed `breaker-state` journal records):
    /// open for one full cooldown from `now`, with an empty window —
    /// the tenant re-earns its history after recovery, exactly as after
    /// a local trip.
    pub(crate) fn inherited_open(policy: &FailurePolicy, now: Instant) -> Self {
        TenantFailureState {
            outcomes: VecDeque::new(),
            state: BreakerCore::Open {
                until: now + Duration::from_millis(policy.breaker_cooldown_ms),
            },
        }
    }

    fn trip(&mut self, policy: &FailurePolicy, now: Instant) {
        self.state =
            BreakerCore::Open { until: now + Duration::from_millis(policy.breaker_cooldown_ms) };
        self.outcomes.clear();
    }

    /// The `restore_circuit_state` gauge value: 0 = closed, 1 = open,
    /// 2 = half-open. An open breaker reports 1 until a submission
    /// actually probes it — the state machine only advances on traffic.
    pub(crate) fn gauge(&self) -> f64 {
        match self.state {
            BreakerCore::Closed => 0.0,
            BreakerCore::Open { .. } => 1.0,
            BreakerCore::HalfOpen { .. } => 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> FailurePolicy {
        FailurePolicy {
            failure_window: 4,
            failure_threshold: 3,
            breaker_cooldown_ms: 50,
            breaker_half_open_probes: 2,
            breaker_success_threshold: 2,
            ..Default::default()
        }
    }

    #[test]
    fn disabled_breaker_always_admits() {
        let mut st = TenantFailureState::default();
        let p = FailurePolicy::default();
        assert!(!p.breaker_enabled());
        for _ in 0..100 {
            assert_eq!(st.admit(&p, Instant::now()), Admission::Admit { probe: false });
            st.record(&p, false, true, Instant::now());
        }
    }

    #[test]
    fn breaker_trips_at_threshold_and_sheds() {
        let mut st = TenantFailureState::default();
        let p = policy();
        let now = Instant::now();
        for i in 0..3 {
            assert_eq!(st.admit(&p, now), Admission::Admit { probe: false }, "attempt {i}");
            st.record(&p, false, true, now);
        }
        assert_eq!(st.gauge(), 1.0, "third failure in a window of 4 trips a threshold of 3");
        assert_eq!(st.admit(&p, now), Admission::Shed);
    }

    #[test]
    fn successes_keep_the_window_clean() {
        let mut st = TenantFailureState::default();
        let p = policy();
        let now = Instant::now();
        // Alternating success/failure never accumulates 3 failures in a
        // window of 4.
        for _ in 0..20 {
            st.record(&p, false, true, now);
            st.record(&p, false, false, now);
        }
        assert_eq!(st.gauge(), 0.0);
    }

    #[test]
    fn cooldown_elapses_into_half_open_probes() {
        let mut st = TenantFailureState::default();
        let p = policy();
        let t0 = Instant::now();
        for _ in 0..3 {
            st.record(&p, false, true, t0);
        }
        assert_eq!(st.admit(&p, t0), Admission::Shed, "still cooling down");
        let after = t0 + Duration::from_millis(60);
        assert_eq!(st.admit(&p, after), Admission::Admit { probe: true });
        assert_eq!(st.gauge(), 2.0);
        // Probe budget is 2: one more probe, then shed.
        assert_eq!(st.admit(&p, after), Admission::Admit { probe: true });
        assert_eq!(st.admit(&p, after), Admission::Shed, "probe budget exhausted");
    }

    #[test]
    fn probe_successes_close_probe_failure_reopens() {
        let p = policy();
        let t0 = Instant::now();
        let half_open = |t: Instant| {
            let mut st = TenantFailureState::default();
            for _ in 0..3 {
                st.record(&p, false, true, t0);
            }
            assert_eq!(st.admit(&p, t), Admission::Admit { probe: true });
            st
        };
        let after = t0 + Duration::from_millis(60);

        // Two probe successes (the success threshold) close the breaker.
        let mut st = half_open(after);
        st.record(&p, true, false, after);
        assert_eq!(st.gauge(), 2.0, "one success of two: still half-open");
        assert_eq!(st.admit(&p, after), Admission::Admit { probe: true });
        st.record(&p, true, false, after);
        assert_eq!(st.gauge(), 0.0, "success threshold reached: closed");
        assert_eq!(st.admit(&p, after), Admission::Admit { probe: false });

        // A probe failure re-opens with a fresh cooldown.
        let mut st = half_open(after);
        st.record(&p, true, true, after);
        assert_eq!(st.gauge(), 1.0);
        assert_eq!(st.admit(&p, after), Admission::Shed);
        assert_eq!(
            st.admit(&p, after + Duration::from_millis(60)),
            Admission::Admit { probe: true },
            "the fresh cooldown elapses into half-open again"
        );
    }
}
