//! The service's observability surface:
//!
//! 1. `render_metrics` emits every required Prometheus family — match
//!    (per tenant and per shard), stage timing, journal lanes,
//!    checkpoint durations, scheduler depth, worker utilization, RCU
//!    write counters;
//! 2. `trace(handle)` explains a completed submission's reuse
//!    decisions, keyed by the ticket's driver tick;
//! 3. `stats()` totals always sum — tenant rows and service counters
//!    come from one cut, even while submissions race the reader.

use restore_core::{ReStore, ReStoreConfig, ReuseDecision};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_pigmix::{datagen, queries, DataScale};
use restore_service::{CheckpointConfig, RestoreService, ServiceConfig};

const SEED: u64 = 0x5EED;

fn engine() -> Engine {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 1024, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), SEED).expect("data generation");
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 3 },
    )
}

fn service(config: ServiceConfig) -> RestoreService {
    RestoreService::new(ReStore::new(engine(), ReStoreConfig::default()), config)
}

#[test]
fn render_metrics_covers_required_families() {
    let svc = service(ServiceConfig { workers: 2, ..Default::default() });
    svc.checkpoint_begin(CheckpointConfig::default());
    svc.submit(Some("ana"), &queries::l7("/out/a1"), "/wf/a1").unwrap().wait().unwrap();
    svc.submit(Some("ana"), &queries::l7("/out/a2"), "/wf/a2").unwrap().wait().unwrap();
    svc.checkpoint_incremental().expect("capture a delta");

    let text = svc.render_metrics();
    for family in [
        // Match path, per tenant and per shard.
        "restore_match_hits_total{tenant=\"ana\"}",
        "restore_match_misses_total{tenant=\"ana\"}",
        "restore_match_seconds_bucket{tenant=\"ana\",le=",
        "restore_match_shard_hits_total{tenant=\"ana\",shard=\"0\"} 1",
        "restore_match_stage_seconds_bucket{stage=\"index_probe\"",
        "restore_match_stage_seconds_bucket{stage=\"winner_pass\"",
        // Driver pipeline stages.
        "restore_stage_seconds_bucket{stage=\"match\"",
        "restore_stage_seconds_bucket{stage=\"execute\"",
        "restore_stage_seconds_bucket{stage=\"register\"",
        // Journal lanes and capture lag.
        "restore_journal_seq ",
        "restore_journal_seq_lag ",
        "restore_journal_lane_bytes{lane=\"0\"}",
        "restore_journal_live_bytes ",
        // Checkpoint durations and keeper sizes.
        "restore_checkpoint_capture_seconds_bucket{le=",
        "restore_checkpoint_compact_seconds_bucket{le=",
        "restore_checkpoint_base_bytes ",
        // Scheduler and worker pool.
        "service_queue_depth ",
        "service_worker_utilization ",
        "service_barrier_stalls_total ",
        "service_queue_wait_seconds_bucket{le=",
        "service_conflict_probe_seconds_bucket{le=",
        "service_worker_run_seconds_bucket{le=",
        "service_ticket_wait_seconds_bucket{le=",
        "service_submitted{tenant=\"ana\"} 2",
        // RCU write counters per namespace.
        "restore_repo_publishes{tenant=\"ana\"}",
        "restore_repo_writer_sections{tenant=\"ana\"}",
        "restore_repo_entries{tenant=\"ana\"}",
    ] {
        assert!(text.contains(family), "missing metric family {family:?} in:\n{text}");
    }
    svc.shutdown();
}

#[test]
fn trace_explains_completed_submissions() {
    let svc = service(ServiceConfig { workers: 2, ..Default::default() });
    let cold = svc.submit(Some("ana"), &queries::l7("/out/c"), "/wf/c").unwrap();
    cold.wait().expect("cold run");
    let warm = svc.submit(Some("ana"), &queries::l7("/out/w"), "/wf/w").unwrap();
    warm.wait().expect("warm run");

    // The cold run's match loop probed an empty repository.
    let cold_trace = svc.trace(&cold).expect("cold trace recorded");
    assert!(
        cold_trace.iter().any(|e| matches!(e.decision, ReuseDecision::NoCandidates { .. })),
        "cold submission should trace a no-candidates decision: {cold_trace:?}"
    );
    // The warm rerun names the entry it reused.
    let warm_trace = svc.trace(&warm).expect("warm trace recorded");
    assert!(
        warm_trace.iter().any(|e| matches!(e.decision, ReuseDecision::Matched { .. })),
        "warm submission should trace a match: {warm_trace:?}"
    );
    // Traces are per-submission: the two handles see different ticks.
    assert_ne!(cold_trace[0].tick, warm_trace[0].tick);
    svc.shutdown();
}

#[test]
fn stats_totals_sum_while_submissions_race() {
    let svc = service(ServiceConfig { workers: 2, queue_depth: 64, ..Default::default() });
    std::thread::scope(|s| {
        let svc = &svc;
        let writer = s.spawn(move || {
            for i in 0..6 {
                let tenant = ["ana", "bob"][i % 2];
                let h = svc
                    .submit(Some(tenant), &queries::l7(&format!("/out/{tenant}/{i}")), "/wf/r")
                    .expect("queue has room");
                h.wait().expect("workflow completes");
            }
        });
        // Race the reader against live submissions: every observed cut
        // must be internally consistent.
        while !writer.is_finished() {
            let st = svc.stats();
            let by_tenant: u64 = st.tenants.iter().map(|t| t.submitted).sum();
            assert_eq!(by_tenant, st.submitted, "tenant rows must sum to the service total");
            let completed: u64 = st.tenants.iter().map(|t| t.completed).sum();
            assert_eq!(completed, st.completed);
            let clocks: Vec<u64> =
                st.tenants.iter().map(|t| t.repository.queries_executed).collect();
            assert!(
                clocks.windows(2).all(|w| w[0] == w[1]),
                "every repository row must report the same clock: {clocks:?}"
            );
        }
        writer.join().unwrap();
    });
    let st = svc.stats();
    assert_eq!(st.submitted, 6);
    assert_eq!(st.completed, 6);
    assert_eq!(st.tenants.len(), 2);
    svc.shutdown();
}
