//! Warm-standby replication at the service layer: an attached standby
//! tails the primary's journal shipments while the worker pool runs,
//! failover is a promote (queue drain + parity check) that serves warm
//! **without touching any checkpoint**, lost shipments fail promotion
//! with a typed parity error, and a service-level rollback diverges the
//! lineage and self-heals through the tailer's resync request.

use restore_core::{
    FailurePolicy, InProcessLink, ReStore, ReStoreConfig, ReplicationError, ReplicationTransport,
};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_pigmix::{datagen, queries, DataScale};
use restore_service::{CheckpointConfig, RestoreService, ServiceConfig, ServiceError, Standby};
use std::time::Duration;

const SEED: u64 = 0xFA11;

fn shared_dfs() -> Dfs {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 2048, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), SEED).expect("data generation");
    dfs
}

fn session_over(dfs: Dfs) -> ReStore {
    let engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 2 },
    );
    ReStore::new(engine, ReStoreConfig::default())
}

fn service_config(workers: usize) -> ServiceConfig {
    ServiceConfig { workers, queue_depth: 256, max_inflight_per_tenant: 64, cross_workflow: true }
}

fn service_over(dfs: Dfs, workers: usize) -> RestoreService {
    RestoreService::new(session_over(dfs), service_config(workers))
}

/// The failover story end to end: a standby tailing a live two-worker
/// service catches up to byte parity, survives the primary's shutdown,
/// and promotes into a service that answers the old workload warm —
/// with no checkpoint set ever captured or restored.
#[test]
fn standby_promotes_warm_after_primary_shutdown() {
    let dfs = shared_dfs();
    let primary = service_over(dfs.clone(), 2);
    let link = InProcessLink::new();
    primary.attach_standby(link.clone()).expect("attach");
    assert_eq!(primary.standby_count(), 1);
    let standby = Standby::attach(session_over(dfs), link);

    for round in 0..3 {
        let mut handles = Vec::new();
        for (tenant, q) in [("ana", 0), ("bo", 1)] {
            let out = format!("/out/fo/r{round}t{tenant}");
            let wf = format!("/wf/fo/r{round}t{tenant}");
            let query = if q == 0 { queries::l3(&out) } else { queries::l8(&out) };
            handles.push(primary.submit(Some(tenant), &query, &wf).expect("admitted"));
        }
        for h in handles {
            h.wait().expect("completes");
        }
    }
    primary.drain();
    primary.ship_now();
    assert!(standby.wait_caught_up(Duration::from_secs(30)), "standby must catch up");
    assert_eq!(primary.replication_lag_records(), 0);

    let reference = primary.driver().save_state();
    assert_eq!(
        standby.replica().driver().save_state(),
        reference,
        "caught-up standby must be byte-identical"
    );
    let metrics = primary.render_metrics();
    for family in ["restore_replication_lag_seconds", "restore_replication_records_shipped"] {
        assert!(metrics.contains(family), "primary must expose {family}");
    }
    assert!(metrics.contains("restore_replication_standbys 1"), "standby gauge renders");

    // Kill the primary; promote the standby. No checkpoint set exists
    // anywhere in this test — the promoted state came only from the
    // shipped record stream.
    primary.shutdown();
    let promoted = standby.promote(service_config(2)).expect("promotion");
    assert_eq!(promoted.driver().save_state(), reference, "promotion preserves the warm state");

    let h = promoted
        .submit(Some("ana"), &queries::l3("/out/fo/r0tana"), "/wf/fo/warm")
        .expect("admitted");
    let e = h.wait().expect("completes");
    assert!(
        e.jobs_skipped > 0 || !e.rewrites.is_empty(),
        "promoted standby must serve the old workload warm"
    );
}

/// An open circuit breaker is part of the shipped state: the primary
/// journals the trip as a `breaker-state` record, the standby replays
/// it, and the promoted service starts with the breaker open — the
/// failing tenant keeps shedding through a full cooldown instead of
/// greeting the new primary with a thundering herd. A healthy tenant
/// on the promoted service is unaffected.
#[test]
fn promoted_standby_inherits_the_open_breaker() {
    struct AlwaysFail;
    impl restore_service::FaultInjector for AlwaysFail {
        fn inject(&self, tenant: Option<&str>, _id: u64, _attempt: u32) -> Option<String> {
            (tenant == Some("flappy")).then(|| "injected outage".to_string())
        }
    }

    let dfs = shared_dfs();
    let primary = service_over(dfs.clone(), 1);
    let link = InProcessLink::new();
    // Attach *before* the trip: breaker state is record-only (never in
    // a base dump), so the standby must see the transition record.
    primary.attach_standby(link.clone()).expect("attach");
    let standby = Standby::attach(session_over(dfs), link);

    primary.set_fault_injector(Some(std::sync::Arc::new(AlwaysFail)));
    primary.set_tenant_config(
        Some("flappy"),
        ReStoreConfig {
            failure: FailurePolicy {
                failure_window: 4,
                failure_threshold: 2,
                breaker_cooldown_ms: 60_000,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    for round in 0..2 {
        let out = format!("/out/bi/r{round}");
        let wf = format!("/wf/bi/r{round}");
        primary.submit(Some("flappy"), &queries::l3(&out), &wf).unwrap().wait().unwrap_err();
    }
    assert!(
        matches!(
            primary.submit(Some("flappy"), &queries::l3("/out/bi/shed"), "/wf/bi/shed"),
            Err(ServiceError::CircuitOpen { .. })
        ),
        "the primary's breaker tripped"
    );

    primary.drain();
    primary.ship_now();
    assert!(standby.wait_caught_up(Duration::from_secs(30)), "standby catches up");
    primary.shutdown();

    let promoted = standby.promote(service_config(1)).expect("promotion");
    match promoted.submit(Some("flappy"), &queries::l3("/out/bi/post"), "/wf/bi/post") {
        Err(ServiceError::CircuitOpen { tenant }) => assert_eq!(tenant, "flappy"),
        other => panic!("promoted service must shed the flapping tenant, got {other:?}"),
    }
    // No injector on the promoted service: a healthy tenant executes.
    promoted
        .submit(Some("steady"), &queries::l3("/out/bi/steady"), "/wf/bi/steady")
        .expect("admitted")
        .wait()
        .expect("healthy tenant serves normally on the new primary");
    promoted.shutdown();
}

/// Losing a shipment mid-stream must surface at promotion: the standby
/// saw a later shipment announce records it could not apply (seq gap),
/// so the parity gate refuses to promote over the hole.
#[test]
fn promote_refuses_parity_over_lost_shipments() {
    let dfs = shared_dfs();
    let primary = service_over(dfs.clone(), 1);
    let link = InProcessLink::new();
    primary.attach_standby(link.clone()).expect("attach");
    let standby = Standby::attach_manual(session_over(dfs), link.clone());
    assert!(standby.tail_all() > 0, "the anchoring base must arrive");

    // First workflow's shipments are lost in transit.
    primary.submit(Some("ana"), &queries::l3("/out/lp/a"), "/wf/lp/a").unwrap().wait().unwrap();
    primary.drain();
    primary.ship_now();
    while link.try_recv().is_some() {}

    // The second workflow's segment announces seqs past the hole.
    primary.submit(Some("bo"), &queries::l8("/out/lp/b"), "/wf/lp/b").unwrap().wait().unwrap();
    primary.drain();
    primary.ship_now();
    assert!(standby.tail_all() > 0, "the post-loss segment must arrive");
    assert!(standby.replica().verify_parity().is_err());

    match standby.promote(service_config(1)) {
        Err(ServiceError::Replication(ReplicationError::Parity { shipped, applied })) => {
            assert!(shipped > applied, "the gap is visible in the parity pair");
        }
        Ok(_) => panic!("promotion must refuse a standby with lost records"),
        Err(e) => panic!("expected a parity refusal, got {e}"),
    }
}

/// A service-level rollback (`restore_incremental`) replays state the
/// journal never shipped: the standby's tailer sees the lineage break,
/// requests a resync on its own, and the next shipping beat re-anchors
/// it to byte parity with the rolled-back primary.
#[test]
fn rollback_on_the_primary_diverges_and_the_tailer_self_heals() {
    let dfs = shared_dfs();
    let primary = service_over(dfs.clone(), 1);
    primary.checkpoint_begin(CheckpointConfig::default());
    let link = InProcessLink::new();
    primary.attach_standby(link.clone()).expect("attach");
    let standby = Standby::attach(session_over(dfs), link);

    // Epoch 1, checkpointed; epoch 2 diverges; then roll back.
    primary.submit(Some("ana"), &queries::l3("/out/rh/e1"), "/wf/rh/e1").unwrap().wait().unwrap();
    primary.drain();
    primary.checkpoint_incremental().expect("capture");
    let epoch1 = primary.checkpoint_set().expect("enabled");
    primary.submit(Some("bo"), &queries::l8("/out/rh/e2"), "/wf/rh/e2").unwrap().wait().unwrap();
    primary.drain();
    primary.restore_incremental(&epoch1).expect("rollback");

    // New work on the restored lineage: shipped segments now carry a
    // lineage token the standby has never anchored. The tailer refuses
    // them and requests a resync; each shipping beat below gives the
    // primary a chance to honor it.
    primary.submit(Some("ana"), &queries::l3("/out/rh/e3"), "/wf/rh/e3").unwrap().wait().unwrap();
    primary.drain();
    let mut healed = false;
    for _ in 0..100 {
        primary.ship_now();
        if standby.wait_caught_up(Duration::from_millis(100)) && standby.replica().resyncs() > 0 {
            healed = true;
            break;
        }
    }
    assert!(healed, "the tailer must resync past the lineage break on its own");
    assert_eq!(
        standby.replica().driver().save_state(),
        primary.driver().save_state(),
        "post-resync standby must match the rolled-back primary"
    );
    let resync_metrics = standby.replica().driver().registry().render();
    assert!(
        resync_metrics.contains("restore_replica_resyncs"),
        "standby must expose the resync counter"
    );
}
