//! The failure-policy engine end to end:
//!
//! 1. a flapping tenant trips its circuit breaker within
//!    `failure_threshold` submissions and is shed with `CircuitOpen`
//!    **before** queueing — no worker slot burned — while a healthy
//!    tenant on the same service is unaffected;
//! 2. bounded retries with backoff heal transient failures and give up
//!    when the outage outlasts the budget;
//! 3. exhausted `Dlq`-disposition submissions park in a per-tenant
//!    dead-letter queue that is inspectable, crash-durable, shipped to
//!    standbys, and re-drivable byte-identically;
//! 4. `Drop` discards failures without dead-lettering or breaker
//!    accounting; the default policy stays fail-fast-once.

use restore_core::{FailureDisposition, FailurePolicy, InProcessLink, ReStore, ReStoreConfig};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_service::{
    FaultInjector, RestoreService, ServiceConfig, ServiceError, Standby, SubmitHandle,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn fresh_dfs() -> Dfs {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 256, replication: 2, node_capacity: None });
    dfs.write_all("/data/pv", b"alice\t4\nbob\t7\nalice\t1\ncarol\t9\ndan\t2\n").unwrap();
    dfs
}

fn session_over(dfs: Dfs) -> ReStore {
    let engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 2 },
    );
    ReStore::new(engine, ReStoreConfig::default())
}

fn service_over(dfs: Dfs) -> RestoreService {
    RestoreService::new(
        session_over(dfs),
        ServiceConfig { workers: 2, queue_depth: 64, ..Default::default() },
    )
}

fn query(tag: &str, round: usize) -> (String, String) {
    let out = format!("/out/{tag}/r{round}");
    let q = format!(
        "A = load '/data/pv' as (user, n:int);
         G = group A by user;
         R = foreach G generate group, SUM(A.n);
         store R into '{out}';"
    );
    (q, format!("/wf/{tag}/r{round}"))
}

fn submit(svc: &RestoreService, tag: &str, round: usize) -> SubmitHandle {
    let (q, wf) = query(tag, round);
    svc.submit(Some(tag), &q, &wf).expect("admitted")
}

fn with_failure(p: FailurePolicy) -> ReStoreConfig {
    ReStoreConfig { failure: p, ..Default::default() }
}

/// Fails every attempt for one tenant until healed; all other tenants
/// pass untouched.
struct TenantOutage {
    tenant: &'static str,
    failing: AtomicBool,
}

impl TenantOutage {
    fn new(tenant: &'static str) -> Arc<Self> {
        Arc::new(TenantOutage { tenant, failing: AtomicBool::new(true) })
    }

    fn heal(&self) {
        self.failing.store(false, Ordering::SeqCst);
    }
}

impl FaultInjector for TenantOutage {
    fn inject(&self, tenant: Option<&str>, _submission: u64, _attempt: u32) -> Option<String> {
        (self.failing.load(Ordering::SeqCst) && tenant == Some(self.tenant))
            .then(|| format!("injected outage for tenant {:?}", self.tenant))
    }
}

/// Fails the first `fail_first` attempts of every submission, then
/// lets it pass — the transient-fault shape retries are for.
struct TransientFault {
    fail_first: u32,
}

impl FaultInjector for TransientFault {
    fn inject(&self, _tenant: Option<&str>, _submission: u64, attempt: u32) -> Option<String> {
        (attempt < self.fail_first).then(|| format!("transient fault on attempt {attempt}"))
    }
}

/// The acceptance scenario: a tenant failing 100% of submissions trips
/// its breaker after exactly `failure_threshold` failures, every
/// subsequent submission is shed with `CircuitOpen` without reaching
/// the queue or a worker, and a healthy tenant keeps executing.
#[test]
fn flapping_tenant_is_shed_healthy_tenant_unaffected() {
    let svc = service_over(fresh_dfs());
    svc.set_fault_injector(Some(TenantOutage::new("flappy")));
    svc.set_tenant_config(
        Some("flappy"),
        with_failure(FailurePolicy {
            failure_window: 8,
            failure_threshold: 3,
            // Long enough that the breaker stays open for the whole test.
            breaker_cooldown_ms: 60_000,
            ..Default::default()
        }),
    );

    // Exactly `failure_threshold` failures trip the breaker; each one
    // surfaces its injected error to the waiting ticket.
    for round in 0..3 {
        let err = submit(&svc, "flappy", round).wait().unwrap_err();
        assert!(
            matches!(&err, ServiceError::Query(e) if e.to_string().contains("injected outage")),
            "failure {round} surfaces the injected error, got {err}"
        );
    }

    // Everything after that is shed before queueing: no admission, no
    // worker slot — only the rejected counters move.
    let before = svc.stats();
    for round in 10..20 {
        let (q, wf) = query("flappy", round);
        match svc.submit(Some("flappy"), &q, &wf) {
            Err(ServiceError::CircuitOpen { tenant }) => assert_eq!(tenant, "flappy"),
            other => panic!("submission {round} should be shed, got {other:?}"),
        }
    }
    let after = svc.stats();
    assert_eq!(after.submitted, before.submitted, "shed submissions are never admitted");
    assert_eq!(after.completed, before.completed, "shed submissions never run");
    assert_eq!(after.rejected, before.rejected + 10);
    assert_eq!((after.queued, after.running), (0, 0), "nothing queued or on a worker");

    // A healthy tenant on the same service is untouched by the outage.
    submit(&svc, "steady", 0).wait().expect("healthy tenant executes normally");

    let metrics = svc.render_metrics();
    assert!(metrics.contains("restore_circuit_state{tenant=\"flappy\"} 1"), "breaker open gauge");
    assert!(metrics.contains("restore_circuit_shed_total 10"), "shed counter");
    svc.shutdown();
}

/// Bounded retries heal a transient fault — and the backoff schedule
/// runs through re-enqueue, so the worker pool is never parked.
#[test]
fn retries_heal_transients_and_exhaust_into_the_final_error() {
    let svc = service_over(fresh_dfs());
    svc.set_fault_injector(Some(Arc::new(TransientFault { fail_first: 2 })));
    svc.set_tenant_config(
        Some("ana"),
        with_failure(FailurePolicy {
            on_failure: FailureDisposition::Retry,
            max_retries: 3,
            retry_backoff_base_ms: 1,
            retry_backoff_cap_ms: 4,
            ..Default::default()
        }),
    );

    // Attempts 0 and 1 fail, attempt 2 succeeds: the waiter sees only
    // the eventual success.
    submit(&svc, "ana", 0).wait().expect("third attempt succeeds");
    assert!(svc.render_metrics().contains("restore_retries_total 2"));

    // An outage longer than the retry budget surfaces the last error.
    svc.set_fault_injector(Some(Arc::new(TransientFault { fail_first: 10 })));
    let err = submit(&svc, "ana", 1).wait().unwrap_err();
    assert!(matches!(&err, ServiceError::Query(e) if e.to_string().contains("transient fault")));
    assert!(svc.render_metrics().contains("restore_retries_total 5"), "3 more retries consumed");
    svc.shutdown();
}

/// `Dlq` disposition: the exhausted submission parks in the tenant's
/// dead-letter queue carrying the exact compiled workflow, the attempt
/// count, and the final error — and the error still reaches the ticket.
#[test]
fn exhausted_dlq_submission_parks_with_the_exact_workflow() {
    let svc = service_over(fresh_dfs());
    svc.set_fault_injector(Some(TenantOutage::new("dl")));
    svc.set_tenant_config(
        Some("dl"),
        with_failure(FailurePolicy {
            on_failure: FailureDisposition::Dlq,
            max_retries: 1,
            retry_backoff_base_ms: 1,
            ..Default::default()
        }),
    );

    let (q, wf) = query("dl", 0);
    let err = svc.submit(Some("dl"), &q, &wf).unwrap().wait().unwrap_err();
    assert!(matches!(err, ServiceError::Query(_)), "the waiter still learns the fate");

    let entries = svc.dlq_entries(Some("dl"));
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].attempts, 2, "initial attempt plus one retry");
    assert!(entries[0].error.contains("injected outage"));
    assert_eq!(
        entries[0].wf,
        restore_dataflow::compile(&q, &wf).unwrap(),
        "the parked workflow is exactly what was submitted"
    );
    assert_eq!(svc.dlq_depth(None), 0, "other namespaces untouched");
    let metrics = svc.render_metrics();
    assert!(metrics.contains("restore_dlq_puts_total 1"));
    assert!(metrics.contains("restore_dlq_depth{tenant=\"dl\"} 1"));
    svc.shutdown();
}

/// `Drop` disposition: the error surfaces once, nothing is parked, and
/// dropped failures never feed the breaker window — best-effort traffic
/// cannot trip its own breaker.
#[test]
fn drop_disposition_discards_without_dlq_or_breaker_accounting() {
    let svc = service_over(fresh_dfs());
    svc.set_fault_injector(Some(TenantOutage::new("be")));
    svc.set_tenant_config(
        Some("be"),
        with_failure(FailurePolicy {
            on_failure: FailureDisposition::Drop,
            failure_window: 8,
            failure_threshold: 2,
            ..Default::default()
        }),
    );

    // Six consecutive failures — three times the threshold — and every
    // submission is still admitted: dropped failures are not counted.
    for round in 0..6 {
        let err = submit(&svc, "be", round).wait().unwrap_err();
        assert!(matches!(err, ServiceError::Query(_)));
    }
    assert_eq!(svc.dlq_depth(Some("be")), 0, "nothing dead-lettered");
    assert!(
        svc.render_metrics().contains("restore_circuit_state{tenant=\"be\"} 0"),
        "breaker stays closed"
    );
    svc.shutdown();
}

/// The default policy is fail-fast-once: no retry (a retry would have
/// succeeded here), no dead-letter entry, no breaker.
#[test]
fn default_policy_fails_fast_exactly_once() {
    let svc = service_over(fresh_dfs());
    svc.set_fault_injector(Some(Arc::new(TransientFault { fail_first: 1 })));
    let err = submit(&svc, "ana", 0).wait().unwrap_err();
    assert!(matches!(err, ServiceError::Query(_)));
    assert_eq!(svc.dlq_depth(Some("ana")), 0);
    assert!(svc.render_metrics().contains("restore_retries_total 0"));
    svc.shutdown();
}

/// The recovery path: cooldown elapses, the next submission is admitted
/// as a half-open probe, its success closes the breaker, and the tenant
/// serves normally again.
#[test]
fn half_open_probe_closes_the_breaker_after_heal() {
    let svc = service_over(fresh_dfs());
    let outage = TenantOutage::new("ho");
    svc.set_fault_injector(Some(outage.clone()));
    svc.set_tenant_config(
        Some("ho"),
        with_failure(FailurePolicy {
            failure_window: 4,
            failure_threshold: 2,
            breaker_cooldown_ms: 50,
            breaker_half_open_probes: 1,
            breaker_success_threshold: 1,
            ..Default::default()
        }),
    );

    for round in 0..2 {
        submit(&svc, "ho", round).wait().unwrap_err();
    }
    let (q, wf) = query("ho", 2);
    assert!(
        matches!(svc.submit(Some("ho"), &q, &wf), Err(ServiceError::CircuitOpen { .. })),
        "breaker is open immediately after tripping"
    );

    outage.heal();
    std::thread::sleep(Duration::from_millis(60));

    // First submission past the cooldown is the probe; its success
    // closes the breaker and normal admission resumes.
    submit(&svc, "ho", 3).wait().expect("probe succeeds after heal");
    for round in 4..7 {
        submit(&svc, "ho", round).wait().expect("breaker closed again");
    }
    assert!(svc.render_metrics().contains("restore_circuit_state{tenant=\"ho\"} 0"));
    svc.shutdown();
}

/// Redrive is byte-identical to a fresh submission: the parked workflow
/// re-enters normal admission, executes, and produces the same output
/// bytes a never-failed submission of the same query produces on a
/// pristine service. The ack is durable — a restart does not resurrect
/// the re-driven entry.
#[test]
fn redrive_replays_byte_identically_to_a_fresh_submission() {
    let dfs = fresh_dfs();
    let svc = service_over(dfs.clone());
    let outage = TenantOutage::new("rd");
    svc.set_fault_injector(Some(outage.clone()));
    svc.set_tenant_config(
        Some("rd"),
        with_failure(FailurePolicy { on_failure: FailureDisposition::Dlq, ..Default::default() }),
    );

    let (q, wf) = query("rd", 0);
    svc.submit(Some("rd"), &q, &wf).unwrap().wait().unwrap_err();
    assert_eq!(svc.dlq_depth(Some("rd")), 1);

    outage.heal();
    let outcome = svc.redrive(Some("rd"));
    assert!(outcome.stopped.is_none(), "the whole queue re-drives");
    assert_eq!(outcome.admitted.len(), 1);
    let exec = outcome.admitted[0].wait().expect("re-driven workflow completes");
    let redriven = dfs.read_all(&exec.final_output).unwrap();

    // The same query on a pristine twin service, never failed.
    let twin_dfs = fresh_dfs();
    let twin = service_over(twin_dfs.clone());
    let fresh = twin.submit(Some("rd"), &q, &wf).unwrap().wait().unwrap();
    assert_eq!(exec.final_output, fresh.final_output);
    assert_eq!(redriven, twin_dfs.read_all(&fresh.final_output).unwrap(), "byte-identical");
    twin.shutdown();

    assert_eq!(svc.dlq_depth(Some("rd")), 0, "re-driven entry acked");
    assert!(svc.render_metrics().contains("restore_dlq_redrives_total 1"));

    // The ack is journaled: a restarted service sees the empty queue.
    let snap = svc.snapshot();
    svc.shutdown();
    let svc2 = service_over(dfs);
    svc2.restore(&snap).unwrap();
    assert_eq!(svc2.dlq_depth(Some("rd")), 0);
    svc2.shutdown();
}

/// Dead letters are part of the durable state: a service rebuilt from a
/// snapshot serves the exact parked entries, and they re-drive to
/// completion once the fault is gone.
#[test]
fn dlq_survives_crash_restart_and_redrives() {
    let dfs = fresh_dfs();
    let svc = service_over(dfs.clone());
    svc.set_fault_injector(Some(TenantOutage::new("park")));
    svc.set_tenant_config(
        Some("park"),
        with_failure(FailurePolicy { on_failure: FailureDisposition::Dlq, ..Default::default() }),
    );
    for round in 0..2 {
        submit(&svc, "park", round).wait().unwrap_err();
    }
    let parked = svc.dlq_entries(Some("park"));
    assert_eq!(parked.len(), 2);

    // Crash: snapshot, tear down, rebuild from the snapshot alone.
    let snap = svc.snapshot();
    svc.shutdown();
    let svc2 = service_over(dfs);
    svc2.restore(&snap).unwrap();
    assert_eq!(svc2.dlq_entries(Some("park")), parked, "restored queue is exact");

    // No injector on the rebuilt service: the redrive completes.
    let outcome = svc2.redrive(Some("park"));
    assert!(outcome.stopped.is_none());
    assert_eq!(outcome.admitted.len(), 2);
    for h in outcome.admitted {
        h.wait().expect("re-driven workflow completes after restart");
    }
    assert_eq!(svc2.dlq_depth(Some("park")), 0);
    svc2.shutdown();
}

/// Dead letters ship to warm standbys with everything else: a promoted
/// standby serves its primary's queue and can re-drive it.
#[test]
fn promoted_standby_serves_the_primary_dlq() {
    let dfs = fresh_dfs();
    let primary = service_over(dfs.clone());
    let link = InProcessLink::new();
    primary.attach_standby(link.clone()).expect("attach");
    let standby = Standby::attach(session_over(dfs), link);

    primary.set_fault_injector(Some(TenantOutage::new("park")));
    primary.set_tenant_config(
        Some("park"),
        with_failure(FailurePolicy { on_failure: FailureDisposition::Dlq, ..Default::default() }),
    );
    submit(&primary, "park", 0).wait().unwrap_err();
    let parked = primary.dlq_entries(Some("park"));
    assert_eq!(parked.len(), 1);

    primary.drain();
    primary.ship_now();
    assert!(standby.wait_caught_up(Duration::from_secs(30)), "standby catches up");
    primary.shutdown();

    let promoted = standby
        .promote(ServiceConfig { workers: 2, queue_depth: 64, ..Default::default() })
        .expect("promotion");
    assert_eq!(promoted.dlq_entries(Some("park")), parked, "promoted queue is the primary's");

    // The promoted service (no injector) re-drives its predecessor's
    // dead letters to completion.
    let outcome = promoted.redrive(Some("park"));
    assert!(outcome.stopped.is_none());
    assert_eq!(outcome.admitted.len(), 1);
    outcome.admitted.into_iter().next().unwrap().wait().expect("completes on the new primary");
    assert_eq!(promoted.dlq_depth(Some("park")), 0);
    promoted.shutdown();
}
