//! Durable multi-tenant serving: crash-restart parity, snapshots under
//! load, and per-tenant policy submission through the service.

use restore_core::{Heuristic, ReStore, ReStoreConfig, ReStoreStats, SelectionPolicy};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_service::{RestoreService, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

const TENANTS: [&str; 4] = ["ana", "bo", "cy", "dee"];

fn fresh_dfs() -> Dfs {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 256, replication: 2, node_capacity: None });
    dfs.write_all("/data/pv", b"alice\t4\nbob\t7\nalice\t1\ncarol\t9\ndan\t2\n").unwrap();
    dfs.write_all("/data/users", b"alice\tkitchener\nbob\ttoronto\ncarol\twaterloo\n").unwrap();
    dfs
}

fn engine_over(dfs: Dfs) -> Engine {
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 2 },
    )
}

fn service_over(dfs: Dfs, config: ReStoreConfig) -> RestoreService {
    RestoreService::new(
        ReStore::new(engine_over(dfs), config),
        ServiceConfig { workers: 4, queue_depth: 256, ..Default::default() },
    )
}

/// Each tenant runs its own query shape; `round` varies only the output
/// location, so reruns are answerable from the tenant's repository.
fn tenant_query(tenant: &str, round: usize) -> (String, String) {
    let out = format!("/out/{tenant}/r{round}");
    let q = match tenant {
        "ana" => format!(
            "A = load '/data/pv' as (user, n:int);
             G = group A by user;
             R = foreach G generate group, SUM(A.n);
             store R into '{out}';"
        ),
        "bo" => format!(
            "A = load '/data/pv' as (user, revenue:int);
             B = load '/data/users' as (name, city);
             C = join B by name, A by user;
             D = group C by $0;
             E = foreach D generate group, SUM(C.revenue);
             store E into '{out}';"
        ),
        "cy" => format!(
            "A = load '/data/pv' as (user, n:int);
             B = filter A by n > 2;
             G = group B by user;
             R = foreach G generate group, COUNT(B);
             store R into '{out}';"
        ),
        _ => format!(
            "A = load '/data/users' as (name, city);
             P = foreach A generate city;
             D = distinct P;
             store D into '{out}';"
        ),
    };
    (q, format!("/wf/{tenant}/r{round}"))
}

/// Observable outcome of one tenant's submission.
#[derive(Debug, PartialEq)]
struct Outcome {
    tenant: String,
    jobs_skipped: usize,
    rewrites: usize,
    output: Vec<u8>,
}

fn submit_round(svc: &RestoreService, round: usize) -> Vec<Outcome> {
    let handles: Vec<_> = TENANTS
        .iter()
        .map(|t| {
            let (q, wf) = tenant_query(t, round);
            (t.to_string(), svc.submit(Some(t), &q, &wf).expect("admitted"))
        })
        .collect();
    handles
        .into_iter()
        .map(|(tenant, h)| {
            let e = h.wait().expect("workflow completes");
            let output = svc.driver().engine().dfs().read_all(&e.final_output).unwrap();
            Outcome { tenant, jobs_skipped: e.jobs_skipped, rewrites: e.rewrites.len(), output }
        })
        .collect()
}

fn install_overrides(svc: &RestoreService) {
    // ana materializes conservatively; dee registers nothing final.
    svc.set_tenant_config(
        Some("ana"),
        ReStoreConfig { heuristic: Heuristic::Conservative, ..Default::default() },
    );
    svc.set_tenant_config(
        Some("dee"),
        ReStoreConfig { heuristic: Heuristic::None, ..Default::default() },
    );
}

/// Run the mixed 4-tenant workload: round 1 cold, then — with or
/// without a simulated process restart in between — round 2 warm.
/// Returns the round-2 outcomes, the per-tenant repository statistics,
/// and each tenant's effective config.
fn run_scenario(restart: bool) -> (Vec<Outcome>, Vec<ReStoreStats>, Vec<ReStoreConfig>) {
    let dfs = fresh_dfs();
    let svc = service_over(dfs.clone(), ReStoreConfig::default());
    install_overrides(&svc);
    submit_round(&svc, 1);

    let svc = if restart {
        // Simulated crash/restart: snapshot, tear the whole process
        // state down, and bring up a fresh service over the surviving
        // DFS from the snapshot alone.
        let snap = svc.snapshot();
        svc.shutdown();
        let svc2 = service_over(dfs.clone(), ReStoreConfig::default());
        svc2.restore(&snap).expect("snapshot restores");
        svc2
    } else {
        svc
    };

    let outcomes = submit_round(&svc, 2);
    let stats = TENANTS.iter().map(|t| svc.driver().stats_as(Some(t))).collect();
    let configs = TENANTS.iter().map(|t| svc.tenant_config(Some(t))).collect();
    svc.shutdown();
    (outcomes, stats, configs)
}

/// The crash-restart suite's core claim: a service rebuilt from a
/// snapshot serves round 2 exactly as the uninterrupted service would
/// have — same per-tenant warm-hit statistics, same output bytes, same
/// repository state, same effective policies.
#[test]
fn crash_restart_matches_uninterrupted_run() {
    let (u_out, u_stats, u_cfg) = run_scenario(false);
    let (r_out, r_stats, r_cfg) = run_scenario(true);

    assert_eq!(u_out, r_out, "per-tenant warm hits and output bytes must match");
    assert_eq!(u_stats, r_stats, "per-tenant repository statistics must match");
    assert_eq!(u_cfg, r_cfg, "per-tenant policies must survive the restart");

    // And the parity is not vacuous: round 2 really is warm.
    for o in &u_out {
        assert!(
            o.jobs_skipped > 0 || o.rewrites > 0,
            "tenant {} should be served from its restored repository: {o:?}",
            o.tenant
        );
    }
}

/// `save_state` raced against strict-eviction sweeps and in-flight
/// workflows: every snapshot loads cleanly, and a quiesced snapshot
/// never references a path that does not exist in the DFS.
#[test]
fn snapshot_under_load_never_serializes_dead_paths() {
    let dfs = fresh_dfs();
    // Aggressive retention: anything unused for 2 ticks is evicted (and
    // its file deleted — deferred when pinned by an in-flight workflow).
    let config = ReStoreConfig {
        selection: SelectionPolicy { eviction_window: Some(2), ..Default::default() },
        ..Default::default()
    };
    let svc = Arc::new(service_over(dfs.clone(), config));

    let mut handles = Vec::new();
    for wave in 0..6 {
        for t in &TENANTS {
            let (q, wf) = tenant_query(t, 100 + wave);
            handles.push(svc.submit(Some(t), &q, &wf).expect("admitted"));
        }

        // Snapshot while workflows are in flight: must always load
        // cleanly into a fresh session, whatever the race.
        let live = svc.driver().save_state();
        let scratch = ReStore::new(engine_over(dfs.clone()), ReStoreConfig::default());
        scratch.load_state(&live).unwrap_or_else(|e| {
            panic!("snapshot taken under load must stay loadable: {e}\n{live}")
        });

        // Quiesced snapshot: with dispatch paused and nothing running,
        // nothing mutates the DFS, so the existence check is race-free.
        svc.pause();
        while svc.stats().running > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = svc.driver().save_state();
        assert_all_paths_live(&snap, &dfs);
        svc.resume();
    }
    for h in handles {
        h.wait().expect("workflow completes despite snapshots and sweeps");
    }
    let final_snap = svc.snapshot();
    assert_all_paths_live(&final_snap, &dfs);
}

/// Load `snap` into a scratch session and assert every repository and
/// provenance path in every namespace has a file behind it.
fn assert_all_paths_live(snap: &str, dfs: &Dfs) {
    let scratch = ReStore::new(engine_over(dfs.clone()), ReStoreConfig::default());
    scratch.load_state(snap).expect("snapshot loads");
    let mut namespaces: Vec<Option<String>> = vec![None];
    namespaces.extend(scratch.tenant_ids().into_iter().map(Some));
    for ns in namespaces {
        let t = ns.as_deref();
        scratch.with_repository_as(t, |repo| {
            for e in repo.entries() {
                assert!(
                    dfs.exists(&e.output_path),
                    "snapshot serialized dangling repository path {} (tenant {t:?})",
                    e.output_path
                );
            }
        });
        scratch.with_provenance_as(t, |prov| {
            for p in prov.iter_paths() {
                assert!(
                    dfs.exists(p),
                    "snapshot serialized dangling provenance path {p} (tenant {t:?})"
                );
            }
        });
    }
}

/// Submissions arriving while a snapshot quiesces the pool are queued —
/// not rejected — and execute once dispatch resumes.
#[test]
fn snapshot_queues_concurrent_submissions() {
    let dfs = fresh_dfs();
    let svc = Arc::new(service_over(dfs, ReStoreConfig::default()));
    let (q, wf) = tenant_query("ana", 1);
    svc.submit(Some("ana"), &q, &wf).unwrap().wait().unwrap();

    // A snapshotting thread and a submitting thread race.
    let snap = std::thread::scope(|s| {
        let svc2 = svc.clone();
        let snapper = s.spawn(move || svc2.snapshot());
        let (q2, wf2) = tenant_query("ana", 2);
        let h = svc.submit(Some("ana"), &q2, &wf2).expect("queued, not rejected");
        let e = h.wait().expect("completes after the snapshot resumes dispatch");
        assert_eq!(e.jobs_skipped, 1, "warm hit straddling a snapshot");
        snapper.join().expect("snapshot thread")
    });
    assert!(snap.starts_with("restore-state v5\n"));
}

/// The service's per-tenant config APIs change behaviour for that
/// tenant only, and overrides ride along in snapshots.
#[test]
fn per_tenant_policy_submission_via_service() {
    let dfs = fresh_dfs();
    let svc = service_over(dfs.clone(), ReStoreConfig::default());
    let frugal = ReStoreConfig {
        heuristic: Heuristic::None,
        register_final_outputs: false,
        ..Default::default()
    };
    svc.set_tenant_config(Some("frugal"), frugal.clone());
    assert_eq!(svc.tenant_config(Some("frugal")), frugal);
    assert_eq!(svc.tenant_config(Some("ana")), svc.driver().config());

    let (q, _) = tenant_query("ana", 1);
    svc.submit(Some("frugal"), &q, "/wf/f1").unwrap().wait().unwrap();
    svc.submit(Some("ana"), &q, "/wf/a1").unwrap().wait().unwrap();
    assert_eq!(
        svc.driver().stats_as(Some("frugal")).repository_entries,
        0,
        "frugal's policy stores nothing"
    );
    assert!(svc.driver().stats_as(Some("ana")).repository_entries > 0);

    // The override is part of the durable state.
    let snap = svc.snapshot();
    svc.shutdown();
    let svc2 = service_over(dfs, ReStoreConfig::default());
    svc2.restore(&snap).unwrap();
    assert_eq!(svc2.tenant_config(Some("frugal")), frugal);
    svc2.shutdown();
}
