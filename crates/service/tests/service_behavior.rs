//! Service-layer guarantees:
//!
//! 1. admission control sheds load with `Overloaded` /
//!    `TenantOverloaded` instead of blocking or panicking;
//! 2. tenants are isolated: one tenant's reuse and sweeps never touch
//!    another's entries;
//! 3. cross-workflow scheduling produces byte-identical outputs to
//!    submitting the same queries sequentially through the plain driver.

use restore_core::{ReStore, ReStoreConfig, SelectionPolicy};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_pigmix::{datagen, queries, DataScale};
use restore_service::{RestoreService, ServiceConfig, ServiceError};

const SEED: u64 = 0x5EED;

fn engine() -> Engine {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 1024, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), SEED).expect("data generation");
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 3 },
    )
}

fn service(config: ServiceConfig) -> RestoreService {
    RestoreService::new(ReStore::new(engine(), ReStoreConfig::default()), config)
}

/// The per-tenant query mix: one multi-job workflow plus single-job
/// queries that exercise sub-job reuse.
fn mix(tag: &str) -> Vec<(String, String)> {
    vec![
        (queries::l3(&format!("/out/{tag}/l3")), format!("/wf/{tag}/l3")),
        (queries::l7(&format!("/out/{tag}/l7")), format!("/wf/{tag}/l7")),
        (queries::l8(&format!("/out/{tag}/l8")), format!("/wf/{tag}/l8")),
        (queries::l11(&format!("/out/{tag}/l11")), format!("/wf/{tag}/l11")),
    ]
}

#[test]
fn queue_saturation_sheds_with_overloaded() {
    let svc = service(ServiceConfig { workers: 2, queue_depth: 3, ..Default::default() });
    // Pausing dispatch makes saturation deterministic: nothing drains.
    svc.pause();
    let mut handles = Vec::new();
    for i in 0..3 {
        let h = svc
            .submit(Some("ana"), &queries::l7(&format!("/out/q{i}")), &format!("/wf/q{i}"))
            .expect("queue has room");
        handles.push(h);
    }
    // The fourth submission is shed, not blocked.
    let over = svc.submit(Some("ana"), &queries::l7("/out/q3"), "/wf/q3");
    assert_eq!(over.unwrap_err(), ServiceError::Overloaded { queue_depth: 3 });
    let stats = svc.stats();
    assert_eq!((stats.queued, stats.rejected), (3, 1));

    // Resuming drains the queue; every accepted query completes.
    svc.resume();
    for h in handles {
        h.wait().expect("accepted query completes");
    }
    // Capacity is available again.
    svc.submit(Some("ana"), &queries::l7("/out/q4"), "/wf/q4").unwrap().wait().unwrap();
}

#[test]
fn tenant_inflight_cap_rejects_tenant_only() {
    let svc = service(ServiceConfig {
        workers: 2,
        queue_depth: 16,
        max_inflight_per_tenant: 1,
        ..Default::default()
    });
    svc.pause();
    let a = svc.submit(Some("ana"), &queries::l7("/out/a0"), "/wf/a0").unwrap();
    let denied = svc.submit(Some("ana"), &queries::l7("/out/a1"), "/wf/a1");
    assert_eq!(
        denied.unwrap_err(),
        ServiceError::TenantOverloaded { tenant: "ana".into(), max_inflight: 1 }
    );
    // Another tenant is unaffected by ana's cap.
    let b = svc.submit(Some("bo"), &queries::l7("/out/b0"), "/wf/b0").unwrap();
    svc.resume();
    a.wait().unwrap();
    b.wait().unwrap();
    // With ana's workflow done, her slot frees up.
    svc.submit(Some("ana"), &queries::l7("/out/a2"), "/wf/a2").unwrap().wait().unwrap();
}

#[test]
fn tenant_sweeps_and_reuse_are_isolated() {
    let config = ReStoreConfig {
        selection: SelectionPolicy { eviction_window: Some(2), ..Default::default() },
        ..Default::default()
    };
    let svc = RestoreService::new(
        ReStore::new(engine(), config),
        ServiceConfig { workers: 2, ..Default::default() },
    );

    // bo populates his namespace, then goes idle.
    svc.submit(Some("bo"), &queries::l7("/out/bo/l7"), "/wf/bo/l7").unwrap().wait().unwrap();
    let bo_entries = svc.driver().stats_as(Some("bo")).repository_entries;
    assert!(bo_entries > 0);

    // ana's traffic advances the shared clock far past bo's window; each
    // of her queries runs an eviction sweep — in ana's space only.
    for i in 0..8 {
        svc.submit(Some("ana"), &queries::l7(&format!("/out/ana/{i}")), &format!("/wf/ana/{i}"))
            .unwrap()
            .wait()
            .unwrap();
    }

    assert_eq!(
        svc.driver().stats_as(Some("bo")).repository_entries,
        bo_entries,
        "ana's sweeps must not evict bo's entries"
    );
    svc.driver().with_repository_as(Some("bo"), |repo| {
        for e in repo.entries() {
            assert!(
                svc.driver().engine().dfs().exists(&e.output_path),
                "bo's output {} deleted by another tenant's sweep",
                e.output_path
            );
        }
    });

    // No cross-tenant reuse: bo rerunning ana's exact query text (fresh
    // output path) still executes jobs.
    let cold = svc.submit(Some("carol"), &queries::l7("/out/carol/l7"), "/wf/carol/l7").unwrap();
    let exec = cold.wait().unwrap();
    assert_eq!(exec.jobs_skipped, 0, "carol must not reuse ana's or bo's entries");
}

/// The acceptance bar: an 8-worker mixed-tenant run with cross-workflow
/// scheduling produces byte-identical outputs to the same queries
/// submitted sequentially through the plain driver.
#[test]
fn cross_workflow_scheduling_matches_sequential_driver() {
    let tenants = ["ana", "bo", "carol"];

    // Baseline: plain driver, strictly sequential submission order.
    let baseline = ReStore::new(engine(), ReStoreConfig::default());
    let mut expected: Vec<Vec<u8>> = Vec::new();
    for t in &tenants {
        for (q, prefix) in mix(t) {
            let e = baseline.execute_query_as(Some(t), &q, &prefix).unwrap();
            expected.push(baseline.engine().dfs().read_all(&e.final_output).unwrap());
        }
    }

    // Service: same queries, 8 workers, cross-workflow overlap enabled.
    let svc = service(ServiceConfig {
        workers: 8,
        queue_depth: 64,
        max_inflight_per_tenant: 16,
        cross_workflow: true,
    });
    let mut handles = Vec::new();
    for t in &tenants {
        for (q, prefix) in mix(t) {
            handles.push(svc.submit(Some(t), &q, &prefix).unwrap());
        }
    }
    let mut got = Vec::new();
    for h in handles {
        let e = h.wait().expect("service query completes");
        got.push(svc.driver().engine().dfs().read_all(&e.final_output).unwrap());
    }
    assert_eq!(got, expected, "service outputs must be byte-identical to sequential driver");

    let stats = svc.stats();
    assert_eq!(stats.completed, (tenants.len() * 4) as u64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.tenants.len(), tenants.len());
}

/// Two identical submissions racing on the same paths: the footprint
/// probe serializes them, so the second is answered from the first's
/// repository entries instead of colliding on the DFS.
#[test]
fn conflicting_submissions_serialize_in_order() {
    let svc = service(ServiceConfig { workers: 4, ..Default::default() });
    let q = queries::l3("/out/same");
    let first = svc.submit(Some("ana"), &q, "/wf/same").unwrap();
    let second = svc.submit(Some("ana"), &q, "/wf/same").unwrap();
    let e1 = first.wait().expect("first run executes");
    let e2 = second.wait().expect("second run must not race the first");
    assert_eq!(e1.jobs_skipped, 0);
    assert!(e2.jobs_skipped > 0, "second identical query is served from the repository");
    assert_eq!(
        svc.driver().engine().dfs().read_all(&e1.final_output).unwrap(),
        svc.driver().engine().dfs().read_all(&e2.final_output).unwrap(),
    );
}

/// Strict-§5 stress: many rounds of multi-job workflows race over 8
/// workers while every query runs an eviction sweep with a 1-tick
/// window. Entry pinning must keep both matched outputs *and* each
/// workflow's own registered intermediates alive until consumed — any
/// regression surfaces as a `FileNotFound` here.
#[test]
fn strict_eviction_under_service_concurrency_never_loses_files() {
    let strict = ReStoreConfig {
        selection: SelectionPolicy { eviction_window: Some(1), ..Default::default() },
        // Paper-experiment mode: final outputs stay user-owned so they
        // are never swept and remain readable below.
        register_final_outputs: false,
        ..Default::default()
    };
    let svc = RestoreService::new(
        ReStore::new(engine(), strict),
        ServiceConfig {
            workers: 8,
            queue_depth: 64,
            max_inflight_per_tenant: 64,
            ..Default::default()
        },
    );
    let mut handles = Vec::new();
    for round in 0..4 {
        for t in ["ana", "bo"] {
            for (q, prefix) in mix(&format!("r{round}/{t}")) {
                handles.push(svc.submit(Some(t), &q, &prefix).unwrap());
            }
        }
    }
    let mut outputs: Vec<Vec<restore_common::Tuple>> = Vec::new();
    for h in handles {
        let e = h.wait().expect("strict-policy query must not hit FileNotFound");
        let bytes = svc.driver().engine().dfs().read_all(&e.final_output).unwrap();
        let mut t = restore_common::codec::decode_all(&bytes).unwrap();
        t.sort();
        outputs.push(t);
    }
    // Every round answers each query identically.
    let per_round = 8;
    for r in 1..4 {
        for i in 0..per_round {
            assert_eq!(outputs[r * per_round + i], outputs[i], "round {r} query {i} diverged");
        }
    }
}

#[test]
fn shutdown_drains_accepted_work() {
    let svc = service(ServiceConfig { workers: 2, ..Default::default() });
    let handles: Vec<_> = (0..4)
        .map(|i| {
            svc.submit(Some("ana"), &queries::l8(&format!("/out/s{i}")), &format!("/wf/s{i}"))
                .unwrap()
        })
        .collect();
    svc.shutdown();
    for h in handles {
        h.wait().expect("accepted work completes before shutdown returns");
    }
}
