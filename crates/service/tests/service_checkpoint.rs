//! Continuous incremental checkpointing at the service layer: captures
//! complete **without draining in-flight workflows**, checkpoint sets
//! recover to the exact session state, and compaction folds the
//! journal into a fresh base without ever pausing dispatch.

use restore_core::{ReStore, ReStoreConfig};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_pigmix::{datagen, queries, DataScale};
use restore_service::{CheckpointConfig, RestoreService, ServiceConfig, ServiceError};

const SEED: u64 = 0xC0FFEE;

fn shared_dfs() -> Dfs {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 2048, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), SEED).expect("data generation");
    dfs
}

fn service_over(dfs: Dfs, workers: usize) -> RestoreService {
    let engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 2 },
    );
    let rs = ReStore::new(engine, ReStoreConfig::default());
    RestoreService::new(
        rs,
        ServiceConfig {
            workers,
            queue_depth: 256,
            max_inflight_per_tenant: 64,
            cross_workflow: true,
        },
    )
}

#[test]
fn checkpoint_before_begin_is_rejected() {
    let svc = service_over(shared_dfs(), 1);
    assert!(matches!(svc.checkpoint_incremental(), Err(ServiceError::CheckpointsNotEnabled)));
    assert!(svc.checkpoint_set().is_none());
}

/// The acceptance property: a capture taken while a slow workflow is
/// in flight returns with that workflow **still in flight** — the
/// incremental path never drain-quiesces the pool the way the full
/// `snapshot()` does.
#[test]
fn checkpoint_incremental_completes_with_zero_drain() {
    let svc = service_over(shared_dfs(), 2);
    svc.checkpoint_begin(CheckpointConfig::default());

    let mut verified = false;
    'rounds: for round in 0..50 {
        // Eight multi-job L3 workflows through two workers: the pool
        // stays busy for the whole round.
        let mut handles = Vec::new();
        for i in 0..8 {
            let out = format!("/out/zd/r{round}q{i}");
            let wf = format!("/wf/zd/r{round}q{i}");
            handles.push(svc.submit(Some("ana"), &queries::l3(&out), &wf).expect("admitted"));
        }
        // Wait for work to actually be running (not merely queued).
        for _ in 0..100_000 {
            if svc.stats().running > 0 {
                break;
            }
            std::hint::spin_loop();
        }
        if svc.stats().running > 0 {
            let outcome = svc.checkpoint_incremental().expect("capture under load");
            let still_running = svc.stats().running;
            for h in handles {
                h.wait().expect("workflow completes");
            }
            if still_running > 0 {
                assert!(outcome.base_bytes > 0);
                verified = true;
                break 'rounds;
            }
            continue;
        }
        for h in handles {
            h.wait().expect("workflow completes");
        }
    }
    assert!(
        verified,
        "never once observed a capture returning while a workflow was still in flight"
    );
}

/// Checkpoint sets taken across a workload recover to the exact
/// session state of the moment the last delta was captured.
#[test]
fn checkpoint_set_recovers_the_session_byte_identically() {
    let dfs = shared_dfs();
    let svc = service_over(dfs.clone(), 2);
    svc.checkpoint_begin(CheckpointConfig::default());

    for round in 0..3 {
        let mut handles = Vec::new();
        for (tenant, q) in [("ana", 0), ("bo", 1)] {
            let out = format!("/out/ck/r{round}t{tenant}");
            let wf = format!("/wf/ck/r{round}t{tenant}");
            let query = if q == 0 { queries::l3(&out) } else { queries::l8(&out) };
            handles.push(svc.submit(Some(tenant), &query, &wf).expect("admitted"));
        }
        for h in handles {
            h.wait().expect("completes");
        }
        svc.checkpoint_incremental().expect("capture");
    }
    // Quiesce so the live reference state stops moving, then take one
    // final delta so the set covers everything.
    svc.drain();
    svc.checkpoint_incremental().expect("final capture");
    let set = svc.checkpoint_set().expect("enabled");
    let reference = svc.driver().save_state();

    let resumed = service_over(dfs, 2);
    let report = resumed.restore_incremental(&set).expect("recovery");
    assert!(report.torn_tail.is_none());
    assert_eq!(resumed.driver().save_state(), reference, "recovered state must match the live one");

    // And the recovered service serves warm hits from the journaled
    // repository.
    let h =
        resumed.submit(Some("ana"), &queries::l3("/out/ck/r0tana"), "/wf/warm").expect("admitted");
    let e = h.wait().expect("completes");
    assert!(
        e.jobs_skipped > 0 || !e.rewrites.is_empty(),
        "recovered repository must keep serving reuse"
    );
}

/// Restoring onto a service that is itself checkpointing rebases the
/// keeper: post-restore captures describe the restored lineage, not a
/// splice of old and new.
#[test]
fn restore_rebases_the_checkpoint_keeper() {
    let dfs = shared_dfs();
    let svc = service_over(dfs.clone(), 2);
    svc.checkpoint_begin(CheckpointConfig::default());

    // Epoch 1: some work, checkpointed.
    svc.submit(Some("ana"), &queries::l3("/out/rb/e1"), "/wf/rb/e1").unwrap().wait().unwrap();
    svc.drain();
    svc.checkpoint_incremental().unwrap();
    let epoch1 = svc.checkpoint_set().unwrap();

    // Epoch 2: diverge, then roll back to epoch 1.
    svc.submit(Some("bo"), &queries::l8("/out/rb/e2"), "/wf/rb/e2").unwrap().wait().unwrap();
    svc.drain();
    svc.checkpoint_incremental().unwrap();
    svc.restore_incremental(&epoch1).expect("rollback");

    // Epoch 3: new work on the restored lineage; the set taken now
    // must reproduce the live state exactly (no epoch-2 residue, no
    // stale base).
    svc.submit(Some("ana"), &queries::l3("/out/rb/e3"), "/wf/rb/e3").unwrap().wait().unwrap();
    svc.drain();
    svc.checkpoint_incremental().unwrap();
    let set = svc.checkpoint_set().unwrap();
    let reference = svc.driver().save_state();

    let resumed = service_over(dfs, 1);
    resumed.restore_incremental(&set).expect("recovery");
    assert_eq!(
        resumed.driver().save_state(),
        reference,
        "post-restore checkpoint sets must describe the restored lineage"
    );
}

/// Regression: the **legacy full-snapshot** `restore()` must rebase the
/// checkpoint keeper exactly like `restore_incremental` does. It used
/// to leave the pre-restore base and segments in place, so the next
/// `checkpoint_set()` spliced the old lineage under post-restore
/// deltas — a set that silently resurrected rolled-back state.
#[test]
fn legacy_restore_rebases_the_checkpoint_keeper() {
    let dfs = shared_dfs();
    let svc = service_over(dfs.clone(), 2);
    svc.checkpoint_begin(CheckpointConfig::default());

    // Epoch 1: work captured in a *full* snapshot.
    svc.submit(Some("ana"), &queries::l3("/out/lr/e1"), "/wf/lr/e1").unwrap().wait().unwrap();
    let full = svc.snapshot();

    // Epoch 2: diverge under continuous checkpointing…
    svc.submit(Some("bo"), &queries::l8("/out/lr/e2"), "/wf/lr/e2").unwrap().wait().unwrap();
    svc.drain();
    svc.checkpoint_incremental().unwrap();

    // …then roll back to epoch 1 through the legacy path.
    svc.restore(&full).expect("full-snapshot restore");

    // Epoch 3: new work on the restored lineage. The set taken now must
    // reproduce the live session — no epoch-2 residue, no stale base.
    svc.submit(Some("ana"), &queries::l3("/out/lr/e3"), "/wf/lr/e3").unwrap().wait().unwrap();
    svc.drain();
    svc.checkpoint_incremental().unwrap();
    let set = svc.checkpoint_set().unwrap();
    let reference = svc.driver().save_state();

    let resumed = service_over(dfs, 1);
    resumed.restore_incremental(&set).expect("recovery");
    assert_eq!(
        resumed.driver().save_state(),
        reference,
        "snapshot restore must rebase the keeper like restore_incremental"
    );
}

/// Crash **mid-compaction**: a fold writes `keeper.base` and then
/// clears the segment list; a process dying between the two persists a
/// fresh base still carrying the pre-fold segments. Sequence anchoring
/// makes that splice harmless — every stale record is at or below the
/// new base's anchor, so recovery skips them all and lands on the same
/// state as the uninterrupted set.
#[test]
fn crash_between_fold_and_segment_clear_recovers_identically() {
    let dfs = shared_dfs();
    let svc = service_over(dfs.clone(), 2);
    // Default ratio: no fold triggers on its own, so the segment list
    // below is exactly what a fold would find (and fail to clear).
    svc.checkpoint_begin(CheckpointConfig::default());

    svc.submit(Some("ana"), &queries::l3("/out/mc/e1"), "/wf/mc/e1").unwrap().wait().unwrap();
    svc.drain();
    svc.checkpoint_incremental().unwrap();
    svc.submit(Some("bo"), &queries::l8("/out/mc/e2"), "/wf/mc/e2").unwrap().wait().unwrap();
    svc.drain();
    svc.checkpoint_incremental().unwrap();
    let pre_fold = svc.checkpoint_set().unwrap();
    assert!(!pre_fold.segments.is_empty(), "the splice needs stale segments to carry");

    // The torn artifact: the fold's fresh base has been written, the
    // old segments have not been cleared.
    let fresh_base = svc.driver().save_state();
    let spliced =
        restore_service::CheckpointSet { base: fresh_base.clone(), segments: pre_fold.segments };

    let interrupted = service_over(dfs, 1);
    let report = interrupted.restore_incremental(&spliced).expect("spliced recovery");
    assert_eq!(report.records_applied, 0, "every stale record sits at or below the fold anchor");
    assert!(report.records_skipped > 0, "the splice must actually carry stale records");
    assert_eq!(
        interrupted.driver().save_state(),
        fresh_base,
        "a crash between fold and clear must not change the recovered state"
    );
}

/// A tight compaction ratio folds the journal into a fresh base; the
/// compacted set stays recoverable and keeps shrinking its segment
/// list.
#[test]
fn compaction_folds_segments_into_a_fresh_base() {
    let dfs = shared_dfs();
    let svc = service_over(dfs.clone(), 2);
    // Ratio 0: any journaled byte triggers a fold — every capture
    // compacts.
    svc.checkpoint_begin(CheckpointConfig { segment_bytes: 4 * 1024, compact_ratio: 0.0 });

    let mut saw_compaction = false;
    for round in 0..3 {
        let out = format!("/out/cp/r{round}");
        let h = svc.submit(None, &queries::l3(&out), &format!("/wf/cp/r{round}")).unwrap();
        h.wait().expect("completes");
        let outcome = svc.checkpoint_incremental().expect("capture");
        saw_compaction |= outcome.compacted;
        if outcome.compacted {
            assert_eq!(outcome.journal_bytes, 0, "a fold leaves no journal riding the base");
        }
    }
    assert!(saw_compaction, "ratio 0 must compact");
    assert!(svc.checkpoint_compactions() > 0);

    svc.drain();
    svc.checkpoint_incremental().expect("final capture");
    let set = svc.checkpoint_set().unwrap();
    let reference = svc.driver().save_state();
    let resumed = service_over(dfs, 1);
    resumed.restore_incremental(&set).expect("recovery");
    assert_eq!(resumed.driver().save_state(), reference);
}
