//! Cluster-wide I/O metrics.
//!
//! `bytes_written` counts every replica (like disk traffic on a real
//! cluster); `logical_bytes_written` counts file contents once. The cost
//! model charges replication on the write path, and Table 1 reports
//! pre-replication sizes — both views are needed.

use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug, Default)]
pub struct Metrics {
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
    pub logical_bytes_written: AtomicU64,
    pub blocks_created: AtomicU64,
    pub files_created: AtomicU64,
    pub files_deleted: AtomicU64,
}

/// Point-in-time copy of the metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub logical_bytes_written: u64,
    pub blocks_created: u64,
    pub files_created: u64,
    pub files_deleted: u64,
}

impl Metrics {
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            logical_bytes_written: self.logical_bytes_written.load(Ordering::Relaxed),
            blocks_created: self.blocks_created.load(Ordering::Relaxed),
            files_created: self.files_created.load(Ordering::Relaxed),
            files_deleted: self.files_deleted.load(Ordering::Relaxed),
        }
    }

    pub fn add_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_write(&self, logical: u64, replicated: u64) {
        self.logical_bytes_written.fetch_add(logical, Ordering::Relaxed);
        self.bytes_written.fetch_add(replicated, Ordering::Relaxed);
    }
}

impl MetricsSnapshot {
    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            logical_bytes_written: self.logical_bytes_written - earlier.logical_bytes_written,
            blocks_created: self.blocks_created - earlier.blocks_created,
            files_created: self.files_created - earlier.files_created,
            files_deleted: self.files_deleted - earlier.files_deleted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let m = Metrics::default();
        m.add_read(10);
        m.add_write(5, 15);
        let a = m.snapshot();
        assert_eq!(a.bytes_read, 10);
        assert_eq!(a.logical_bytes_written, 5);
        assert_eq!(a.bytes_written, 15);
        m.add_read(1);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.bytes_read, 1);
        assert_eq!(d.bytes_written, 0);
    }
}
