//! Simulated HDFS-like distributed file system.
//!
//! The paper stores every job and sub-job output in HDFS and reasons about
//! the storage and I/O cost of doing so (Table 1, Figures 11/14). This
//! crate reproduces the observable surface ReStore needs:
//!
//! * a **namenode** namespace mapping paths to block lists, with
//!   per-file replication factor, logical modification time, and a version
//!   counter (ReStore's eviction Rule 4 watches for modified inputs);
//! * **datanodes** holding replicated block payloads with optional
//!   capacity limits and per-node usage accounting;
//! * **block-granular placement** (round-robin with a per-file rotation)
//!   so input splits have locality hosts like Hadoop's;
//! * **metrics** for bytes read/written (including replication traffic),
//!   which drive the cluster cost model and the Table 1 reproduction.
//!
//! The cluster is cheaply clonable (`Arc` inside) and thread safe; map
//! tasks read splits concurrently during job execution.

pub mod block;
pub mod cluster;
pub mod datanode;
pub mod metrics;
pub mod namenode;

pub use block::{BlockId, FileSplit};
pub use cluster::{Dfs, DfsConfig, DfsReader, DfsWriter};
pub use metrics::MetricsSnapshot;
pub use namenode::FileStatus;
