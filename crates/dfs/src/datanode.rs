//! Datanodes: block payload storage with capacity accounting.

use crate::block::BlockId;
use bytes::Bytes;
use std::collections::HashMap;

/// One storage node. Payloads are [`Bytes`] so replica "copies" share the
/// underlying buffer — replication is accounted, not physically duplicated,
/// keeping large experiments memory-friendly while the metrics still count
/// replica bytes the way a real cluster's disks would.
#[derive(Debug)]
pub struct DataNode {
    pub id: usize,
    /// Optional capacity limit in bytes; `None` = unlimited.
    pub capacity: Option<u64>,
    used: u64,
    blocks: HashMap<BlockId, Bytes>,
}

impl DataNode {
    pub fn new(id: usize, capacity: Option<u64>) -> Self {
        DataNode { id, capacity, used: 0, blocks: HashMap::new() }
    }

    /// Bytes currently stored on this node.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Free bytes, `u64::MAX` when unlimited.
    pub fn free(&self) -> u64 {
        match self.capacity {
            Some(cap) => cap.saturating_sub(self.used),
            None => u64::MAX,
        }
    }

    /// Number of block replicas hosted.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// True when a replica of `id` can be placed.
    pub fn can_store(&self, len: u64) -> bool {
        self.free() >= len
    }

    /// Store a replica. Caller must have checked `can_store`.
    pub fn put(&mut self, id: BlockId, data: Bytes) {
        self.used += data.len() as u64;
        self.blocks.insert(id, data);
    }

    /// Fetch a replica if hosted here.
    pub fn get(&self, id: BlockId) -> Option<Bytes> {
        self.blocks.get(&id).cloned()
    }

    /// Drop a replica, returning the bytes freed.
    pub fn evict(&mut self, id: BlockId) -> u64 {
        match self.blocks.remove(&id) {
            Some(b) => {
                self.used -= b.len() as u64;
                b.len() as u64
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_accounting() {
        let mut n = DataNode::new(0, Some(100));
        assert_eq!(n.free(), 100);
        n.put(BlockId(1), Bytes::from_static(b"0123456789"));
        assert_eq!(n.used(), 10);
        assert_eq!(n.free(), 90);
        assert!(n.can_store(90));
        assert!(!n.can_store(91));
        assert_eq!(n.evict(BlockId(1)), 10);
        assert_eq!(n.used(), 0);
        assert_eq!(n.evict(BlockId(1)), 0);
    }

    #[test]
    fn unlimited_node() {
        let n = DataNode::new(0, None);
        assert_eq!(n.free(), u64::MAX);
        assert!(n.can_store(u64::MAX));
    }

    #[test]
    fn get_returns_shared_payload() {
        let mut n = DataNode::new(0, None);
        n.put(BlockId(7), Bytes::from_static(b"abc"));
        assert_eq!(n.get(BlockId(7)).unwrap().as_ref(), b"abc");
        assert!(n.get(BlockId(8)).is_none());
    }
}
