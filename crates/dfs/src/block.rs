//! Block identifiers and input splits.

/// Globally unique block identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// A contiguous byte range of a file, aligned to one block, with the
/// datanodes that host a replica. This is the unit handed to map tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSplit {
    /// File the split belongs to.
    pub path: String,
    /// Index of the block within the file.
    pub block_index: usize,
    /// Byte offset of the split within the file.
    pub offset: u64,
    /// Length of the split in bytes.
    pub len: u64,
    /// Datanodes hosting a replica of the underlying block.
    pub hosts: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_fields() {
        let s = FileSplit {
            path: "/x".into(),
            block_index: 1,
            offset: 64,
            len: 64,
            hosts: vec![0, 2, 5],
        };
        assert_eq!(s.offset + s.len, 128);
        assert_eq!(s.hosts.len(), 3);
    }
}
