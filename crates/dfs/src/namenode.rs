//! Namenode: the file namespace.

use crate::block::BlockId;
use std::collections::BTreeMap;

/// Metadata of one block of a file: identity, length, replica hosts.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    pub id: BlockId,
    pub len: u64,
    pub replicas: Vec<usize>,
}

/// Metadata of one file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    pub blocks: Vec<BlockMeta>,
    pub len: u64,
    pub replication: usize,
    /// Logical creation/modification tick (the cluster clock, not wall time).
    pub mtime: u64,
    /// Incremented every time the path is overwritten. ReStore's eviction
    /// Rule 4 compares recorded input versions against this.
    pub version: u64,
}

/// Public status view of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStatus {
    pub path: String,
    pub len: u64,
    pub replication: usize,
    pub block_count: usize,
    pub mtime: u64,
    pub version: u64,
}

/// The namespace: a sorted map so prefix listing is a range scan.
#[derive(Debug, Default)]
pub struct NameNode {
    files: BTreeMap<String, FileMeta>,
}

impl NameNode {
    pub fn new() -> Self {
        NameNode::default()
    }

    pub fn get(&self, path: &str) -> Option<&FileMeta> {
        self.files.get(path)
    }

    pub fn contains(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Insert or replace a file entry. Returns the previous entry (whose
    /// blocks the caller must release) and the version the new file gets.
    pub fn upsert(&mut self, path: String, mut meta: FileMeta) -> (Option<FileMeta>, u64) {
        let next_version = self.files.get(&path).map_or(0, |old| old.version + 1);
        meta.version = next_version;
        let old = self.files.insert(path, meta);
        (old, next_version)
    }

    pub fn remove(&mut self, path: &str) -> Option<FileMeta> {
        self.files.remove(path)
    }

    /// All paths with the given prefix, in lexicographic order.
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.files
            .range(prefix.to_string()..)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// Total logical bytes (without replication) under a prefix.
    pub fn bytes_under(&self, prefix: &str) -> u64 {
        self.files
            .range(prefix.to_string()..)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(_, m)| m.len)
            .sum()
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &FileMeta)> {
        self.files.iter()
    }
}

/// Validate a DFS path: absolute, no empty segments, no traversal.
pub fn validate_path(path: &str) -> bool {
    if !path.starts_with('/') || path.len() < 2 {
        return false;
    }
    path.split('/')
        .skip(1)
        .all(|seg| !seg.is_empty() && seg != "." && seg != ".." && !seg.contains('\0'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(len: u64) -> FileMeta {
        FileMeta { blocks: vec![], len, replication: 3, mtime: 0, version: 0 }
    }

    #[test]
    fn upsert_bumps_version() {
        let mut nn = NameNode::new();
        let (old, v) = nn.upsert("/a".into(), meta(1));
        assert!(old.is_none());
        assert_eq!(v, 0);
        let (old, v) = nn.upsert("/a".into(), meta(2));
        assert_eq!(old.unwrap().len, 1);
        assert_eq!(v, 1);
        assert_eq!(nn.get("/a").unwrap().version, 1);
    }

    #[test]
    fn prefix_listing_is_sorted_and_scoped() {
        let mut nn = NameNode::new();
        for p in ["/out/b", "/out/a", "/outx", "/other"] {
            nn.upsert(p.into(), meta(10));
        }
        assert_eq!(nn.list_prefix("/out/"), vec!["/out/a", "/out/b"]);
        assert_eq!(nn.bytes_under("/out/"), 20);
        assert_eq!(nn.bytes_under("/"), 40);
    }

    #[test]
    fn path_validation() {
        assert!(validate_path("/a"));
        assert!(validate_path("/a/b/c.txt"));
        assert!(!validate_path("a/b"));
        assert!(!validate_path("/"));
        assert!(!validate_path("/a//b"));
        assert!(!validate_path("/a/../b"));
        assert!(!validate_path("/a/./b"));
    }
}
