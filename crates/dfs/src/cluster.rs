//! The DFS cluster: public API tying namenode, datanodes, and metrics
//! together.

use crate::block::{BlockId, FileSplit};
use crate::datanode::DataNode;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::namenode::{validate_path, BlockMeta, FileMeta, FileStatus, NameNode};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use restore_common::{Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cluster configuration. Defaults mirror the paper's testbed: 14 worker
/// datanodes, 64 MB blocks, 3-way replication.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    pub nodes: usize,
    pub block_size: u64,
    pub replication: usize,
    /// Per-node capacity in bytes; `None` = unlimited.
    pub node_capacity: Option<u64>,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig { nodes: 14, block_size: 64 << 20, replication: 3, node_capacity: None }
    }
}

impl DfsConfig {
    /// Small configuration convenient for unit tests: 4 nodes, tiny blocks.
    pub fn small_for_tests() -> Self {
        DfsConfig { nodes: 4, block_size: 256, replication: 2, node_capacity: None }
    }
}

struct Inner {
    config: DfsConfig,
    namenode: RwLock<NameNode>,
    nodes: Vec<Mutex<DataNode>>,
    next_block: AtomicU64,
    clock: AtomicU64,
    metrics: Metrics,
}

/// Handle to the distributed file system. Cheap to clone; all clones share
/// the same cluster state.
///
/// ```
/// use restore_dfs::{Dfs, DfsConfig};
///
/// let dfs = Dfs::new(DfsConfig { nodes: 3, block_size: 8, replication: 2, node_capacity: None });
/// dfs.write_all("/data/x", b"hello blocks").unwrap();
/// assert_eq!(dfs.read_all("/data/x").unwrap(), b"hello blocks");
/// // 12 bytes over 8-byte blocks -> 2 input splits for map tasks.
/// assert_eq!(dfs.splits("/data/x").unwrap().len(), 2);
/// // Replication is accounted: 2 replicas of every byte.
/// assert_eq!(dfs.used_bytes(), 24);
/// ```
#[derive(Clone)]
pub struct Dfs {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Dfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dfs")
            .field("nodes", &self.inner.config.nodes)
            .field("files", &self.inner.namenode.read().file_count())
            .finish()
    }
}

impl Dfs {
    /// Bring up a cluster.
    pub fn new(config: DfsConfig) -> Self {
        assert!(config.nodes > 0, "cluster needs at least one datanode");
        assert!(config.block_size > 0, "block size must be positive");
        let nodes = (0..config.nodes)
            .map(|id| Mutex::new(DataNode::new(id, config.node_capacity)))
            .collect();
        Dfs {
            inner: Arc::new(Inner {
                config,
                namenode: RwLock::new(NameNode::new()),
                nodes,
                next_block: AtomicU64::new(0),
                clock: AtomicU64::new(0),
                metrics: Metrics::default(),
            }),
        }
    }

    /// Cluster with default (paper-testbed) configuration.
    pub fn with_defaults() -> Self {
        Dfs::new(DfsConfig::default())
    }

    pub fn config(&self) -> &DfsConfig {
        &self.inner.config
    }

    /// Advance and return the logical clock. Every mutation ticks it.
    fn tick(&self) -> u64 {
        self.inner.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.inner.clock.load(Ordering::Relaxed)
    }

    /// Point-in-time I/O metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    pub fn exists(&self, path: &str) -> bool {
        self.inner.namenode.read().contains(path)
    }

    /// Status of a file.
    pub fn status(&self, path: &str) -> Result<FileStatus> {
        let nn = self.inner.namenode.read();
        let meta = nn.get(path).ok_or_else(|| Error::FileNotFound(path.into()))?;
        Ok(FileStatus {
            path: path.to_string(),
            len: meta.len,
            replication: meta.replication,
            block_count: meta.blocks.len(),
            mtime: meta.mtime,
            version: meta.version,
        })
    }

    /// Logical length of a file in bytes.
    pub fn file_len(&self, path: &str) -> Result<u64> {
        Ok(self.status(path)?.len)
    }

    /// All paths under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.namenode.read().list_prefix(prefix)
    }

    /// Total logical bytes stored under a prefix (pre-replication), the
    /// quantity Table 1 reports.
    pub fn bytes_under(&self, prefix: &str) -> u64 {
        self.inner.namenode.read().bytes_under(prefix)
    }

    /// Total bytes used across datanodes (replicas included).
    pub fn used_bytes(&self) -> u64 {
        self.inner.nodes.iter().map(|n| n.lock().used()).sum()
    }

    /// Open a streaming writer. Fails if the path exists (HDFS semantics);
    /// use [`Dfs::create_overwrite`] to replace.
    pub fn create(&self, path: &str) -> Result<DfsWriter> {
        if !validate_path(path) {
            return Err(Error::InvalidPath(path.into()));
        }
        if self.exists(path) {
            return Err(Error::FileExists(path.into()));
        }
        Ok(DfsWriter::new(self.clone(), path.to_string()))
    }

    /// Open a streaming writer, replacing any existing file at `path`.
    pub fn create_overwrite(&self, path: &str) -> Result<DfsWriter> {
        if !validate_path(path) {
            return Err(Error::InvalidPath(path.into()));
        }
        Ok(DfsWriter::new(self.clone(), path.to_string()))
    }

    /// Write an entire buffer as a new file.
    pub fn write_all(&self, path: &str, data: &[u8]) -> Result<()> {
        let mut w = self.create(path)?;
        w.write(data);
        w.close()
    }

    /// Read an entire file into memory.
    pub fn read_all(&self, path: &str) -> Result<Vec<u8>> {
        let len = self.file_len(path)?;
        self.read_range(path, 0, len)
    }

    /// Read `len` bytes starting at `offset`, possibly spanning blocks.
    pub fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let blocks: Vec<BlockMeta> = {
            let nn = self.inner.namenode.read();
            let meta = nn.get(path).ok_or_else(|| Error::FileNotFound(path.into()))?;
            if offset + len > meta.len {
                return Err(Error::Other(format!(
                    "read past end of {path}: offset {offset} + len {len} > {}",
                    meta.len
                )));
            }
            meta.blocks.clone()
        };
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = 0u64;
        for bm in &blocks {
            let block_start = pos;
            let block_end = pos + bm.len;
            pos = block_end;
            if block_end <= offset {
                continue;
            }
            if block_start >= offset + len {
                break;
            }
            let data = self.fetch_block(bm)?;
            let from = offset.saturating_sub(block_start) as usize;
            let to = ((offset + len).min(block_end) - block_start) as usize;
            out.extend_from_slice(&data[from..to]);
        }
        self.inner.metrics.add_read(out.len() as u64);
        Ok(out)
    }

    /// Open a sequential reader over the whole file.
    pub fn open(&self, path: &str) -> Result<DfsReader> {
        let len = self.file_len(path)?;
        Ok(DfsReader { dfs: self.clone(), path: path.to_string(), pos: 0, len })
    }

    /// Delete a file, releasing every replica. Returns true if it existed.
    pub fn delete(&self, path: &str) -> bool {
        let meta = self.inner.namenode.write().remove(path);
        match meta {
            Some(meta) => {
                self.release_blocks(&meta);
                self.inner.metrics.files_deleted.fetch_add(1, Ordering::Relaxed);
                self.tick();
                true
            }
            None => false,
        }
    }

    /// Delete every file under a prefix, returning how many were removed.
    pub fn delete_prefix(&self, prefix: &str) -> usize {
        let paths = self.list(prefix);
        paths.iter().filter(|p| self.delete(p)).count()
    }

    /// Block-aligned input splits for a file (the MR engine's input).
    pub fn splits(&self, path: &str) -> Result<Vec<FileSplit>> {
        let nn = self.inner.namenode.read();
        let meta = nn.get(path).ok_or_else(|| Error::FileNotFound(path.into()))?;
        let mut out = Vec::with_capacity(meta.blocks.len());
        let mut offset = 0u64;
        for (i, bm) in meta.blocks.iter().enumerate() {
            out.push(FileSplit {
                path: path.to_string(),
                block_index: i,
                offset,
                len: bm.len,
                hosts: bm.replicas.clone(),
            });
            offset += bm.len;
        }
        Ok(out)
    }

    fn fetch_block(&self, bm: &BlockMeta) -> Result<Bytes> {
        for &host in &bm.replicas {
            if let Some(data) = self.inner.nodes[host].lock().get(bm.id) {
                return Ok(data);
            }
        }
        Err(Error::Other(format!(
            "block {:?} unreadable: no live replica on {:?}",
            bm.id, bm.replicas
        )))
    }

    fn release_blocks(&self, meta: &FileMeta) {
        for bm in &meta.blocks {
            for &host in &bm.replicas {
                self.inner.nodes[host].lock().evict(bm.id);
            }
        }
    }

    /// Choose replica hosts for one block: round-robin over nodes starting
    /// at a rotating cursor, skipping nodes that are full.
    fn place_replicas(&self, len: u64, cursor: usize) -> Result<Vec<usize>> {
        let n = self.inner.config.nodes;
        let want = self.inner.config.replication.min(n);
        let mut hosts = Vec::with_capacity(want);
        for i in 0..n {
            if hosts.len() == want {
                break;
            }
            let node = (cursor + i) % n;
            if self.inner.nodes[node].lock().can_store(len) {
                hosts.push(node);
            }
        }
        if hosts.len() < want {
            // Report the fullest constraint for diagnosis.
            let node = cursor % n;
            let free = self.inner.nodes[node].lock().free();
            return Err(Error::OutOfStorage { node, needed: len, free });
        }
        Ok(hosts)
    }

    /// Commit a fully buffered file: split into blocks, place replicas,
    /// register in the namespace. Called by [`DfsWriter::close`].
    fn commit_file(&self, path: String, data: Vec<u8>) -> Result<()> {
        let block_size = self.inner.config.block_size as usize;
        let total_len = data.len() as u64;
        let replication = self.inner.config.replication.min(self.inner.config.nodes);
        let payload = Bytes::from(data);

        let mut blocks = Vec::new();
        let mut start = 0usize;
        // Files always have at least one (possibly empty) block so empty
        // outputs still exist as files.
        loop {
            let end = (start + block_size).min(payload.len());
            let chunk = payload.slice(start..end);
            let id = BlockId(self.inner.next_block.fetch_add(1, Ordering::Relaxed));
            let cursor = (id.0 as usize) % self.inner.config.nodes;
            let hosts = self.place_replicas(chunk.len() as u64, cursor)?;
            for &h in &hosts {
                self.inner.nodes[h].lock().put(id, chunk.clone());
            }
            self.inner.metrics.blocks_created.fetch_add(1, Ordering::Relaxed);
            blocks.push(BlockMeta { id, len: chunk.len() as u64, replicas: hosts });
            start = end;
            if start >= payload.len() {
                break;
            }
        }

        self.inner.metrics.add_write(total_len, total_len * replication as u64);
        self.inner.metrics.files_created.fetch_add(1, Ordering::Relaxed);

        let mtime = self.tick();
        let meta = FileMeta { blocks, len: total_len, replication, mtime, version: 0 };
        let (old, _version) = self.inner.namenode.write().upsert(path, meta);
        if let Some(old) = old {
            self.release_blocks(&old);
        }
        Ok(())
    }
}

/// Buffering writer. Data becomes visible atomically on [`DfsWriter::close`],
/// like an HDFS output committer.
pub struct DfsWriter {
    dfs: Dfs,
    path: String,
    buf: Vec<u8>,
    closed: bool,
}

impl DfsWriter {
    fn new(dfs: Dfs, path: String) -> Self {
        DfsWriter { dfs, path, buf: Vec::new(), closed: false }
    }

    /// Append bytes to the file being written.
    pub fn write(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered so far.
    pub fn len(&self) -> u64 {
        self.buf.len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Commit the file. Consumes the writer.
    pub fn close(mut self) -> Result<()> {
        self.closed = true;
        let buf = std::mem::take(&mut self.buf);
        let path = std::mem::take(&mut self.path);
        self.dfs.commit_file(path, buf)
    }

    /// Abandon the write without committing.
    pub fn abort(mut self) {
        self.closed = true;
        self.buf.clear();
    }
}

/// Sequential reader with chunked access.
pub struct DfsReader {
    dfs: Dfs,
    path: String,
    pos: u64,
    len: u64,
}

impl DfsReader {
    /// Read up to `n` bytes from the current position.
    pub fn read(&mut self, n: u64) -> Result<Vec<u8>> {
        let take = n.min(self.len - self.pos);
        if take == 0 {
            return Ok(Vec::new());
        }
        let out = self.dfs.read_range(&self.path, self.pos, take)?;
        self.pos += take;
        Ok(out)
    }

    /// Remaining bytes.
    pub fn remaining(&self) -> u64 {
        self.len - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dfs {
        Dfs::new(DfsConfig { nodes: 4, block_size: 8, replication: 2, node_capacity: None })
    }

    #[test]
    fn write_read_round_trip() {
        let dfs = tiny();
        let data: Vec<u8> = (0u8..=255).collect();
        dfs.write_all("/data/x", &data).unwrap();
        assert_eq!(dfs.read_all("/data/x").unwrap(), data);
        assert_eq!(dfs.file_len("/data/x").unwrap(), 256);
        // 256 bytes / 8-byte blocks = 32 blocks.
        assert_eq!(dfs.status("/data/x").unwrap().block_count, 32);
    }

    #[test]
    fn create_refuses_existing_path() {
        let dfs = tiny();
        dfs.write_all("/x", b"a").unwrap();
        assert!(matches!(dfs.create("/x"), Err(Error::FileExists(_))));
        // Overwrite path works and bumps version.
        let mut w = dfs.create_overwrite("/x").unwrap();
        w.write(b"bb");
        w.close().unwrap();
        let st = dfs.status("/x").unwrap();
        assert_eq!(st.len, 2);
        assert_eq!(st.version, 1);
    }

    #[test]
    fn invalid_paths_rejected() {
        let dfs = tiny();
        assert!(matches!(dfs.create("relative"), Err(Error::InvalidPath(_))));
        assert!(matches!(dfs.create("/a//b"), Err(Error::InvalidPath(_))));
    }

    #[test]
    fn read_range_spans_blocks() {
        let dfs = tiny();
        let data: Vec<u8> = (0..64u8).collect();
        dfs.write_all("/r", &data).unwrap();
        // Range [6, 18) crosses the 8-byte block boundary twice.
        assert_eq!(dfs.read_range("/r", 6, 12).unwrap(), data[6..18].to_vec());
        assert!(dfs.read_range("/r", 60, 10).is_err());
    }

    #[test]
    fn replication_places_distinct_nodes() {
        let dfs = tiny();
        dfs.write_all("/x", &[7u8; 20]).unwrap();
        for split in dfs.splits("/x").unwrap() {
            assert_eq!(split.hosts.len(), 2);
            assert_ne!(split.hosts[0], split.hosts[1]);
        }
        // Replicated usage is 2x logical.
        assert_eq!(dfs.used_bytes(), 40);
    }

    #[test]
    fn delete_frees_replicas() {
        let dfs = tiny();
        dfs.write_all("/x", &[1u8; 100]).unwrap();
        assert!(dfs.used_bytes() > 0);
        assert!(dfs.delete("/x"));
        assert_eq!(dfs.used_bytes(), 0);
        assert!(!dfs.delete("/x"));
        assert!(!dfs.exists("/x"));
    }

    #[test]
    fn delete_prefix_scopes() {
        let dfs = tiny();
        dfs.write_all("/out/a", b"1").unwrap();
        dfs.write_all("/out/b", b"2").unwrap();
        dfs.write_all("/keep", b"3").unwrap();
        assert_eq!(dfs.delete_prefix("/out/"), 2);
        assert!(dfs.exists("/keep"));
    }

    #[test]
    fn splits_cover_file_exactly() {
        let dfs = tiny();
        let data = vec![0u8; 30]; // 8+8+8+6
        dfs.write_all("/s", &data).unwrap();
        let splits = dfs.splits("/s").unwrap();
        assert_eq!(splits.len(), 4);
        let mut pos = 0;
        for s in &splits {
            assert_eq!(s.offset, pos);
            pos += s.len;
        }
        assert_eq!(pos, 30);
        assert_eq!(splits[3].len, 6);
    }

    #[test]
    fn empty_file_has_one_empty_block() {
        let dfs = tiny();
        dfs.write_all("/empty", b"").unwrap();
        assert!(dfs.exists("/empty"));
        assert_eq!(dfs.file_len("/empty").unwrap(), 0);
        assert_eq!(dfs.splits("/empty").unwrap().len(), 1);
        assert_eq!(dfs.read_all("/empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn capacity_limit_is_enforced() {
        let dfs = Dfs::new(DfsConfig {
            nodes: 2,
            block_size: 64,
            replication: 2,
            node_capacity: Some(100),
        });
        dfs.write_all("/a", &[0u8; 90]).unwrap();
        let err = dfs.write_all("/b", &[0u8; 90]).unwrap_err();
        assert!(matches!(err, Error::OutOfStorage { .. }));
    }

    #[test]
    fn metrics_track_io() {
        let dfs = tiny();
        let before = dfs.metrics();
        dfs.write_all("/m", &[0u8; 10]).unwrap();
        dfs.read_all("/m").unwrap();
        let delta = dfs.metrics().since(&before);
        assert_eq!(delta.logical_bytes_written, 10);
        assert_eq!(delta.bytes_written, 20); // 2x replication
        assert_eq!(delta.bytes_read, 10);
        assert_eq!(delta.files_created, 1);
    }

    #[test]
    fn sequential_reader_chunks() {
        let dfs = tiny();
        let data: Vec<u8> = (0..50u8).collect();
        dfs.write_all("/seq", &data).unwrap();
        let mut r = dfs.open("/seq").unwrap();
        let mut out = Vec::new();
        loop {
            let chunk = r.read(7).unwrap();
            if chunk.is_empty() {
                break;
            }
            out.extend_from_slice(&chunk);
        }
        assert_eq!(out, data);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn concurrent_reads() {
        let dfs = tiny();
        let data: Vec<u8> = (0..200).map(|i| (i % 251) as u8).collect();
        dfs.write_all("/c", &data).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let dfs = dfs.clone();
                let expected = data.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(dfs.read_all("/c").unwrap(), expected);
                    }
                });
            }
        });
    }

    #[test]
    fn overwrite_releases_old_blocks() {
        let dfs = tiny();
        dfs.write_all("/o", &[0u8; 80]).unwrap();
        let used_before = dfs.used_bytes();
        let mut w = dfs.create_overwrite("/o").unwrap();
        w.write(&[1u8; 8]);
        w.close().unwrap();
        assert!(dfs.used_bytes() < used_before);
        assert_eq!(dfs.read_all("/o").unwrap(), vec![1u8; 8]);
    }

    #[test]
    fn writer_abort_leaves_no_file() {
        let dfs = tiny();
        let mut w = dfs.create("/never").unwrap();
        w.write(b"data");
        w.abort();
        assert!(!dfs.exists("/never"));
    }
}
