//! Property-based tests of the DFS: storage round trips, split
//! partitioning, and accounting invariants under arbitrary workloads.

use proptest::prelude::*;
use restore_dfs::{Dfs, DfsConfig};

fn cluster(block_size: u64, replication: usize) -> Dfs {
    Dfs::new(DfsConfig { nodes: 5, block_size, replication, node_capacity: None })
}

proptest! {
    /// Whatever we write, we read back, regardless of block size.
    #[test]
    fn write_read_round_trip(
        data in prop::collection::vec(any::<u8>(), 0..4096),
        block_size in 1u64..512,
        replication in 1usize..4,
    ) {
        let dfs = cluster(block_size, replication);
        dfs.write_all("/f", &data).unwrap();
        prop_assert_eq!(dfs.read_all("/f").unwrap(), data);
    }

    /// Splits tile the file exactly: contiguous, non-overlapping, total
    /// length = file length, each split within block size.
    #[test]
    fn splits_partition_file(
        len in 0usize..5000,
        block_size in 1u64..700,
    ) {
        let dfs = cluster(block_size, 2);
        dfs.write_all("/f", &vec![7u8; len]).unwrap();
        let splits = dfs.splits("/f").unwrap();
        let mut pos = 0u64;
        for s in &splits {
            prop_assert_eq!(s.offset, pos);
            prop_assert!(s.len <= block_size);
            pos += s.len;
        }
        prop_assert_eq!(pos, len as u64);
        // Every split has the requested replica count.
        for s in &splits {
            prop_assert_eq!(s.hosts.len(), 2);
        }
    }

    /// Arbitrary byte ranges read the same bytes as a full read sliced.
    #[test]
    fn read_range_equals_slice(
        data in prop::collection::vec(any::<u8>(), 1..2048),
        block_size in 1u64..300,
        range in (0usize..2048, 0usize..2048),
    ) {
        let dfs = cluster(block_size, 1);
        dfs.write_all("/f", &data).unwrap();
        let (a, b) = range;
        let lo = a.min(b) % data.len();
        let hi = (a.max(b) % data.len()).max(lo);
        let got = dfs.read_range("/f", lo as u64, (hi - lo) as u64).unwrap();
        prop_assert_eq!(&got[..], &data[lo..hi]);
    }

    /// Used bytes = replication × logical bytes, and deletion returns the
    /// cluster to its previous footprint.
    #[test]
    fn accounting_balances(
        sizes in prop::collection::vec(0usize..2000, 1..6),
        replication in 1usize..4,
    ) {
        let dfs = cluster(128, replication);
        let mut logical = 0u64;
        for (i, len) in sizes.iter().enumerate() {
            dfs.write_all(&format!("/f{i}"), &vec![1u8; *len]).unwrap();
            logical += *len as u64;
        }
        prop_assert_eq!(dfs.used_bytes(), logical * replication as u64);
        prop_assert_eq!(dfs.bytes_under("/"), logical);
        for i in 0..sizes.len() {
            dfs.delete(&format!("/f{i}"));
        }
        prop_assert_eq!(dfs.used_bytes(), 0);
    }

    /// Overwriting bumps the version exactly once per overwrite.
    #[test]
    fn versions_count_overwrites(n in 1usize..6) {
        let dfs = cluster(64, 1);
        for i in 0..n {
            let mut w = dfs.create_overwrite("/v").unwrap();
            w.write(&[i as u8]);
            w.close().unwrap();
        }
        prop_assert_eq!(dfs.status("/v").unwrap().version, (n - 1) as u64);
    }
}
