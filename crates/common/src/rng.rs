//! Deterministic pseudo-random generation.
//!
//! Data generation must be bit-reproducible so every experiment run sees
//! identical inputs. Instead of depending on a specific `rand` version's
//! stream, this module implements SplitMix64 (fast, well-distributed,
//! trivially seedable) plus the derived samplers the PigMix generators
//! need: uniform ranges, alphanumeric strings, and a Zipf sampler built
//! from an inverse-CDF table (PigMix's user column is Zipfian).

/// SplitMix64 PRNG. Passes BigCrush when used as a 64-bit generator and is
/// more than random enough for workload synthesis.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`. Uses Lemire's multiply-shift reduction;
    /// the tiny modulo bias is irrelevant for data synthesis.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    pub fn next_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo + self.next_below((hi - lo) as u64) as i64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Random lowercase alphanumeric string of length `len`.
    pub fn next_string(&mut self, len: usize) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        (0..len)
            .map(|_| ALPHABET[self.next_below(ALPHABET.len() as u64) as usize] as char)
            .collect()
    }

    /// Derive an independent generator for a sub-stream. Mixing the label
    /// through one SplitMix64 step keeps derived streams decorrelated.
    pub fn derive(&self, label: u64) -> SplitMix64 {
        let mut mixer = SplitMix64::new(self.state ^ label.rotate_left(17));
        SplitMix64::new(mixer.next_u64())
    }
}

/// Zipf-distributed sampler over `{0, 1, ..., n-1}` with exponent `s`.
///
/// Built from a precomputed cumulative table; sampling is a binary search.
/// Rank 0 is the most frequent item.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("cdf has no NaN")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    pub fn domain_size(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn string_has_requested_length_and_alphabet() {
        let mut rng = SplitMix64::new(11);
        let s = rng.next_string(20);
        assert_eq!(s.len(), 20);
        assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
    }

    #[test]
    fn derived_streams_are_independent() {
        let root = SplitMix64::new(5);
        let mut a = root.derive(1);
        let mut b = root.derive(2);
        assert_ne!(a.next_u64(), b.next_u64());
        // Same label twice gives the same stream.
        let mut c = root.derive(1);
        let mut d = root.derive(1);
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = SplitMix64::new(3);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Harmonic expectation: rank 0 gets ~1/H(100) ≈ 19% of mass.
        let frac = counts[0] as f64 / 50_000.0;
        assert!((0.12..0.28).contains(&frac), "rank-0 fraction {frac}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = SplitMix64::new(3);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 100_000.0;
            assert!((0.08..0.12).contains(&frac), "fraction {frac}");
        }
    }
}
