//! Shared foundation types for the ReStore reproduction.
//!
//! This crate holds the data model every other crate builds on:
//!
//! * [`Value`] — a dynamically typed scalar (null / int / double / chararray),
//!   with the total ordering and hashing semantics needed for shuffle keys.
//! * [`Tuple`] — a row of values, the unit of data flowing through mappers,
//!   reducers, and physical operators.
//! * [`Schema`] — named, typed field lists attached to datasets and plans.
//! * [`codec`] — the line-oriented record format used for files in the
//!   simulated DFS (tab-separated, escaped), mirroring `PigStorage`.
//! * [`rng`] — deterministic in-tree PRNG (SplitMix64) and Zipf sampler so
//!   data generation is bit-reproducible across platforms and crate versions.
//! * [`Error`] — the shared error type.

pub mod bytesize;
pub mod codec;
pub mod error;
pub mod rng;
pub mod schema;
pub mod tuple;
pub mod value;

pub use bytesize::human_bytes;
pub use error::{Error, Result};
pub use schema::{Field, FieldType, Schema};
pub use tuple::Tuple;
pub use value::Value;
