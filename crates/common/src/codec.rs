//! Line-oriented record codec for DFS files.
//!
//! Mirrors Pig's `PigStorage`: one tuple per line, fields separated by
//! tabs, bags rendered as `{(f,f),(f,f)}`. Values are stored untyped (like
//! PigStorage); readers re-infer int/double/string, with a `\0N` marker
//! distinguishing genuine nulls from empty strings. String content that
//! collides with the syntax (tab, newline, backslash, comma, parens,
//! braces) is backslash-escaped.

use crate::error::{Error, Result};
use crate::tuple::Tuple;
use crate::value::Value;

const SEP: u8 = b'\t';
const NL: u8 = b'\n';
const ESC: u8 = b'\\';
/// Marker encoding a null field (vs. an empty string field).
const NULL_MARK: &[u8] = b"\\0N";
/// Bytes that must be escaped inside string payloads.
const SPECIALS: &[u8] = b"\t\n\\,(){}";

/// Append the encoded form of `t` to `out`, including the trailing newline.
pub fn encode_tuple(t: &Tuple, out: &mut Vec<u8>) {
    for (i, v) in t.iter().enumerate() {
        if i > 0 {
            out.push(SEP);
        }
        encode_value(v, out);
    }
    out.push(NL);
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.extend_from_slice(NULL_MARK),
        Value::Str(s) => encode_str(s, out),
        Value::Bag(ts) => {
            out.push(b'{');
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                out.push(b'(');
                for (j, f) in t.iter().enumerate() {
                    if j > 0 {
                        out.push(b',');
                    }
                    encode_value(f, out);
                }
                out.push(b')');
            }
            out.push(b'}');
        }
        other => {
            // Ints and doubles never contain special bytes.
            out.extend_from_slice(other.to_string().as_bytes());
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    for &b in s.as_bytes() {
        if SPECIALS.contains(&b) {
            out.push(ESC);
            out.push(match b {
                SEP => b't',
                NL => b'n',
                other => other,
            });
        } else {
            out.push(b);
        }
    }
}

/// Encode a whole batch of tuples.
pub fn encode_all(tuples: &[Tuple]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tuples {
        encode_tuple(t, &mut out);
    }
    out
}

/// Decode one line (without its trailing newline) into a tuple.
pub fn decode_line(line: &[u8]) -> Result<Tuple> {
    let mut p = Parser { bytes: line, pos: 0 };
    let mut vals = Vec::new();
    loop {
        vals.push(p.parse_field(&[SEP])?);
        if p.pos >= p.bytes.len() {
            break;
        }
        // Skip the separator.
        p.pos += 1;
        if p.pos == p.bytes.len() {
            // Trailing separator: final empty field.
            vals.push(Value::Str(String::new()));
            break;
        }
    }
    Ok(Tuple::from_values(vals))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Parse one field, stopping (without consuming) at any unescaped byte
    /// in `stop`.
    fn parse_field(&mut self, stop: &[u8]) -> Result<Value> {
        if self.peek() == Some(b'{') {
            return self.parse_bag();
        }
        let mut buf = Vec::new();
        let mut had_escape = false;
        let mut is_null = false;
        while let Some(b) = self.peek() {
            if stop.contains(&b) {
                break;
            }
            self.pos += 1;
            if b == ESC {
                let next = self.next_byte()?;
                match next {
                    b't' => buf.push(SEP),
                    b'n' => buf.push(NL),
                    b'0' => {
                        // Null marker "\0N"; only valid as the whole field.
                        let n = self.next_byte()?;
                        if n != b'N' || !buf.is_empty() {
                            return Err(Error::Codec("misplaced null marker".into()));
                        }
                        is_null = true;
                    }
                    b if SPECIALS.contains(&b) => buf.push(b),
                    other => {
                        return Err(Error::Codec(format!("invalid escape \\{}", other as char)))
                    }
                }
                had_escape = true;
            } else {
                buf.push(b);
            }
        }
        if is_null {
            if buf.is_empty() {
                return Ok(Value::Null);
            }
            return Err(Error::Codec("data after null marker".into()));
        }
        let s =
            String::from_utf8(buf).map_err(|_| Error::Codec("record is not valid UTF-8".into()))?;
        Ok(infer_value(s, had_escape))
    }

    fn parse_bag(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut tuples = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Bag(tuples));
        }
        loop {
            tuples.push(self.parse_bag_tuple()?);
            match self.next_byte()? {
                b',' => continue,
                b'}' => break,
                other => {
                    return Err(Error::Codec(format!(
                        "expected ',' or '}}' in bag, found {:?}",
                        other as char
                    )))
                }
            }
        }
        Ok(Value::Bag(tuples))
    }

    fn parse_bag_tuple(&mut self) -> Result<Tuple> {
        self.expect(b'(')?;
        let mut vals = Vec::new();
        if self.peek() == Some(b')') {
            self.pos += 1;
            return Ok(Tuple::from_values(vals));
        }
        loop {
            vals.push(self.parse_field(b",)")?);
            match self.next_byte()? {
                b',' => continue,
                b')' => break,
                other => {
                    return Err(Error::Codec(format!(
                        "expected ',' or ')' in bag tuple, found {:?}",
                        other as char
                    )))
                }
            }
        }
        Ok(Tuple::from_values(vals))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_byte(&mut self) -> Result<u8> {
        let b = self.peek().ok_or_else(|| Error::Codec("unexpected end of record".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<()> {
        let got = self.next_byte()?;
        if got != want {
            return Err(Error::Codec(format!(
                "expected {:?}, found {:?}",
                want as char, got as char
            )));
        }
        Ok(())
    }
}

/// Re-infer the runtime type of a decoded field. Fields that needed
/// escaping are necessarily strings; otherwise try int, then double.
fn infer_value(s: String, had_escape: bool) -> Value {
    if had_escape {
        return Value::Str(s);
    }
    if !s.is_empty() && looks_numeric(&s) {
        if let Ok(i) = s.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(d) = s.parse::<f64>() {
            return Value::Double(d);
        }
    }
    Value::Str(s)
}

fn looks_numeric(s: &str) -> bool {
    let b = s.as_bytes();
    let start = if b[0] == b'-' || b[0] == b'+' { 1 } else { 0 };
    if start >= b.len() {
        return false;
    }
    b[start..].iter().all(|&c| {
        c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'-' || c == b'+'
    }) && b[start].is_ascii_digit()
}

/// Decode an entire byte buffer of newline-separated records.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<Tuple>> {
    let mut out = Vec::new();
    for line in LineIter::new(bytes) {
        out.push(decode_line(line)?);
    }
    Ok(out)
}

/// Iterator over newline-delimited records. Raw newline bytes are always
/// record boundaries because newlines inside strings are escaped.
pub struct LineIter<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> LineIter<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        LineIter { bytes, pos: 0 }
    }
}

impl<'a> Iterator for LineIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let rest = &self.bytes[self.pos..];
        match rest.iter().position(|&b| b == NL) {
            Some(n) => {
                self.pos += n + 1;
                Some(&rest[..n])
            }
            None => {
                self.pos = self.bytes.len();
                Some(rest)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn round_trip(t: &Tuple) -> Tuple {
        let mut buf = Vec::new();
        encode_tuple(t, &mut buf);
        assert_eq!(buf.last(), Some(&NL));
        decode_line(&buf[..buf.len() - 1]).unwrap()
    }

    #[test]
    fn simple_round_trip() {
        let t = tuple!["alice", 42, 2.5];
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn null_round_trip() {
        let t = Tuple::from_values(vec![Value::Null, Value::str(""), Value::Int(1), Value::Null]);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn escapes_round_trip() {
        let t = tuple!["a\tb", "c\nd", "e\\f", "g,h", "i(j)", "k{l}"];
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn bag_round_trip() {
        let bag = Value::Bag(vec![tuple!["u1", 10], tuple!["u2", 20]]);
        let t = Tuple::from_values(vec![Value::str("k"), bag]);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn empty_bag_and_empty_tuple_in_bag() {
        let t = Tuple::from_values(vec![Value::Bag(vec![])]);
        assert_eq!(round_trip(&t), t);
        let t = Tuple::from_values(vec![Value::Bag(vec![Tuple::new()])]);
        // An empty tuple encodes as "()" whose single field decodes as
        // empty string — acceptable PigStorage-style lossiness.
        let rt = round_trip(&t);
        assert_eq!(rt.get(0).as_bag().unwrap().len(), 1);
    }

    #[test]
    fn bag_with_nulls_and_specials() {
        let bag = Value::Bag(vec![
            Tuple::from_values(vec![Value::Null, Value::str("a,b")]),
            Tuple::from_values(vec![Value::str("c}d"), Value::Double(1.5)]),
        ]);
        let t = Tuple::from_values(vec![bag, Value::Int(7)]);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn nested_bag_round_trip() {
        // CoGroup output carries multiple bags in one row.
        let t = Tuple::from_values(vec![
            Value::str("key"),
            Value::Bag(vec![tuple![1], tuple![2]]),
            Value::Bag(vec![tuple!["x", "y"]]),
        ]);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn numeric_string_stays_numeric_after_decode() {
        // "42" written as a *string* decodes as Int — acceptable
        // lossiness matching PigStorage's untyped storage.
        let t = tuple!["42"];
        assert_eq!(round_trip(&t), tuple![42]);
    }

    #[test]
    fn batch_round_trip() {
        let ts = vec![tuple![1, "a"], tuple![2, "b"], tuple![3, "c\nd"]];
        let bytes = encode_all(&ts);
        assert_eq!(decode_all(&bytes).unwrap(), ts);
    }

    #[test]
    fn double_round_trip_keeps_type() {
        let rt = round_trip(&tuple![3.0]);
        assert!(matches!(rt.get(0), Value::Double(_)));
    }

    #[test]
    fn invalid_escape_is_error() {
        assert!(decode_line(b"a\\qb").is_err());
        assert!(decode_line(b"trailing\\").is_err());
        assert!(decode_line(b"{(a),").is_err());
        assert!(decode_line(b"{(a)").is_err());
    }

    #[test]
    fn line_iter_splits_records() {
        let bytes = b"a\nb\nc";
        let lines: Vec<&[u8]> = LineIter::new(bytes).collect();
        assert_eq!(lines, vec![b"a".as_ref(), b"b".as_ref(), b"c".as_ref()]);
    }

    #[test]
    fn encoded_len_estimate_is_exact_for_clean_data() {
        let cases = vec![
            tuple!["alice", 42, 2.5],
            Tuple::from_values(vec![
                Value::str("k"),
                Value::Bag(vec![tuple!["u", 1], tuple!["v", 2]]),
            ]),
        ];
        for t in cases {
            let mut buf = Vec::new();
            encode_tuple(&t, &mut buf);
            assert_eq!(buf.len(), t.encoded_len(), "tuple {t}");
        }
    }

    #[test]
    fn trailing_empty_field_round_trips() {
        let t = Tuple::from_values(vec![Value::Int(1), Value::str("")]);
        assert_eq!(round_trip(&t), t);
    }
}
