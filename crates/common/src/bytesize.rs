//! Human-readable byte formatting for reports and experiment output.

/// Format a byte count the way the paper's Table 1 does: pick the largest
/// unit that keeps the mantissa ≥ 1, one decimal place.
///
/// ```
/// use restore_common::human_bytes;
/// assert_eq!(human_bytes(0), "0 B");
/// assert_eq!(human_bytes(27), "27 B");
/// assert_eq!(human_bytes(1_600_000_000), "1.5 GB");
/// ```
pub fn human_bytes(n: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KB", "MB", "GB", "TB", "PB"];
    if n < 1024 {
        return format!("{n} B");
    }
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

/// Parse shorthand sizes used by experiment configs: `"64MB"`, `"1.5GB"`,
/// `"512"` (bytes). Returns `None` on malformed input.
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let split = s.find(|c: char| !c.is_ascii_digit() && c != '.').unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let num: f64 = num.parse().ok()?;
    let mult: u64 = match unit.trim().to_ascii_uppercase().as_str() {
        "" | "B" => 1,
        "K" | "KB" => 1 << 10,
        "M" | "MB" => 1 << 20,
        "G" | "GB" => 1 << 30,
        "T" | "TB" => 1 << 40,
        _ => return None,
    };
    Some((num * mult as f64) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_each_unit() {
        assert_eq!(human_bytes(1023), "1023 B");
        assert_eq!(human_bytes(1024), "1.0 KB");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.0 MB");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024), "3.0 GB");
    }

    #[test]
    fn parses_round_trip() {
        assert_eq!(parse_bytes("64MB"), Some(64 << 20));
        assert_eq!(parse_bytes("1.5GB"), Some((1.5 * (1u64 << 30) as f64) as u64));
        assert_eq!(parse_bytes("512"), Some(512));
        assert_eq!(parse_bytes("10 kb"), Some(10 << 10));
        assert_eq!(parse_bytes("x"), None);
        assert_eq!(parse_bytes("10XB"), None);
    }
}
