//! Tuples: ordered collections of [`Value`]s, the rows of the system.

use crate::value::Value;
use std::fmt;

/// A row of values. Tuples flow from Load operators through mappers,
/// the shuffle, reducers, and into Store operators.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    /// Empty tuple.
    pub fn new() -> Self {
        Tuple(Vec::new())
    }

    /// Tuple from a vector of values.
    pub fn from_values(vals: Vec<Value>) -> Self {
        Tuple(vals)
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Field accessor; out-of-range positions read as null, mirroring Pig's
    /// forgiving positional access on ragged rows.
    pub fn get(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.0.get(idx).unwrap_or(&NULL)
    }

    /// Append a field.
    pub fn push(&mut self, v: Value) {
        self.0.push(v);
    }

    /// Build a new tuple holding the listed positions (projection).
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple(cols.iter().map(|&c| self.get(c).clone()).collect())
    }

    /// Concatenate two tuples (used by Join to build output rows).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut vals = Vec::with_capacity(self.0.len() + other.0.len());
        vals.extend_from_slice(&self.0);
        vals.extend_from_slice(&other.0);
        Tuple(vals)
    }

    /// Estimated on-disk size under the text codec: field bytes plus one
    /// separator byte between fields plus the newline. Must agree with
    /// [`crate::codec::encode_tuple`] for data without escape characters.
    pub fn encoded_len(&self) -> usize {
        let fields: usize = self.0.iter().map(|v| v.encoded_len()).sum();
        let seps = self.0.len().saturating_sub(1);
        fields + seps + 1
    }

    /// Iterate over the fields.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(vals: Vec<Value>) -> Self {
        Tuple(vals)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

/// Shorthand for building tuples in tests and examples:
/// `tuple![1, "a", 2.5]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::from_values(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_get_is_null() {
        let t = tuple![1, "x"];
        assert_eq!(t.get(0), &Value::Int(1));
        assert!(t.get(5).is_null());
    }

    #[test]
    fn project_and_concat() {
        let t = tuple![1, "a", 2.5];
        assert_eq!(t.project(&[2, 0]), tuple![2.5, 1]);
        let u = tuple!["b"];
        assert_eq!(t.concat(&u), tuple![1, "a", 2.5, "b"]);
    }

    #[test]
    fn encoded_len_counts_separators_and_newline() {
        // "12\tab\n" = 6 bytes
        assert_eq!(tuple![12, "ab"].encoded_len(), 6);
        // empty tuple: just the newline
        assert_eq!(Tuple::new().encoded_len(), 1);
    }

    #[test]
    fn display_is_parenthesized() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, a)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(tuple![1, 2] < tuple![1, 3]);
        assert!(tuple![1] < tuple![1, 0]);
    }
}
