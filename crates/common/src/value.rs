//! Dynamically typed scalar values.
//!
//! The Pig data model is dynamically typed; a field of a tuple can hold a
//! null, an integer, a floating point number, or a character array. The
//! MapReduce shuffle needs a *total* order and a stable hash over values,
//! which `f64` does not provide natively, so [`Value`] defines both
//! explicitly (NaN sorts last among doubles; hashing uses the bit pattern
//! with `-0.0` normalized to `+0.0`).

use crate::tuple::Tuple;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically typed scalar, the atom of the data model.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style null; sorts before everything else.
    Null,
    /// 64-bit signed integer (covers Pig's int and long).
    Int(i64),
    /// 64-bit float (covers Pig's float and double).
    Double(f64),
    /// Character array (Pig `chararray`).
    Str(String),
    /// A bag of tuples (Pig `bag`), produced by Group/CoGroup. Bags are
    /// what makes a grouped relation storable: one row = one whole group,
    /// so a reused Group output can be aggregated map-side.
    Bag(Vec<Tuple>),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// True when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by arithmetic and aggregates: ints widen to f64,
    /// nulls and strings yield `None` (strings holding numbers are *not*
    /// implicitly coerced; Pig would insert an explicit cast).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Integer view: doubles truncate only if they are whole numbers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Double(d) if d.fract() == 0.0 => Some(*d as i64),
            _ => None,
        }
    }

    /// String view (no implicit numeric-to-string coercion).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bag view.
    pub fn as_bag(&self) -> Option<&[Tuple]> {
        match self {
            Value::Bag(b) => Some(b),
            _ => None,
        }
    }

    /// Truthiness used by Filter: null is false, numbers compare to zero,
    /// strings and bags are true when non-empty.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Double(d) => *d != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Bag(b) => !b.is_empty(),
        }
    }

    /// Estimated on-disk size in bytes under the text codec. This drives the
    /// DFS accounting and the cost model, so it must agree with
    /// [`crate::codec`]'s actual encoding length for representative data.
    pub fn encoded_len(&self) -> usize {
        match self {
            // Encoded as empty field.
            Value::Null => 0,
            Value::Int(i) => {
                let mut n = *i;
                let mut len = if n < 0 { 1 } else { 0 };
                loop {
                    len += 1;
                    n /= 10;
                    if n == 0 {
                        break;
                    }
                }
                len
            }
            Value::Double(d) => format_double(*d).len(),
            Value::Str(s) => s.len(),
            Value::Bag(ts) => {
                // "{(f,f),(f,f)}": braces + per-tuple parens and commas.
                let mut len = 2 + ts.len().saturating_sub(1);
                for t in ts {
                    len += 2 + t.0.len().saturating_sub(1);
                    len += t.iter().map(|v| v.encoded_len()).sum::<usize>();
                }
                len
            }
        }
    }

    /// Rank used to order values of different runtime types, mirroring
    /// Pig's cross-type ordering: null < int/double < chararray < bag.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Double(_) => 1,
            Value::Str(_) => 2,
            Value::Bag(_) => 3,
        }
    }
}

/// Canonical text rendering for doubles: integral doubles keep a trailing
/// `.0` so they round-trip as doubles, NaN/inf use Rust's spelling.
pub(crate) fn format_double(d: f64) -> String {
    if d.is_finite() && d.fract() == 0.0 && d.abs() < 1e15 {
        format!("{d:.1}")
    } else {
        format!("{d}")
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bag(a), Bag(b)) => a.cmp(b),
            (Double(a), Double(b)) => total_f64_cmp(*a, *b),
            (Int(a), Double(b)) => total_f64_cmp(*a as f64, *b),
            (Double(a), Int(b)) => total_f64_cmp(*a, *b as f64),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

/// Total order over f64 with NaN greatest, used for shuffle-key sorting.
fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    match a.partial_cmp(&b) {
        Some(o) => o,
        None => match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => unreachable!("partial_cmp only fails on NaN"),
        },
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Int and a whole Double must hash alike because they compare
            // equal (hash/eq consistency for group keys like `1 == 1.0`).
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                1u8.hash(state);
                let d = if *d == 0.0 { 0.0 } else { *d };
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bag(ts) => {
                3u8.hash(state);
                ts.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => Ok(()),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{}", format_double(*d)),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bag(ts) => {
                write!(f, "{{")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "(")?;
                    for (j, v) in t.iter().enumerate() {
                        if j > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{v}")?;
                    }
                    write!(f, ")")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(1), Value::Null, Value::str("a"), Value::Double(0.5)];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[3], Value::str("a"));
    }

    #[test]
    fn numeric_cross_type_ordering() {
        assert_eq!(Value::Int(2).cmp(&Value::Double(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).cmp(&Value::Double(2.5)), Ordering::Less);
        assert_eq!(Value::Double(3.0).cmp(&Value::Int(2)), Ordering::Greater);
    }

    #[test]
    fn nan_sorts_greatest_among_numbers() {
        let mut vals = [Value::Double(f64::NAN), Value::Double(1.0), Value::Int(5)];
        vals.sort();
        assert!(matches!(vals[2], Value::Double(d) if d.is_nan()));
    }

    #[test]
    fn eq_hash_consistency_for_int_double() {
        let a = Value::Int(7);
        let b = Value::Double(7.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(Value::Double(-0.0), Value::Double(0.0));
        assert_eq!(hash_of(&Value::Double(-0.0)), hash_of(&Value::Double(0.0)));
    }

    #[test]
    fn encoded_len_matches_display() {
        for v in [
            Value::Null,
            Value::Int(0),
            Value::Int(-12345),
            Value::Int(i64::MAX),
            Value::Double(1.5),
            Value::Double(-2.0),
            Value::str("hello"),
            Value::str(""),
        ] {
            assert_eq!(v.encoded_len(), v.to_string().len(), "value {v:?}");
        }
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(-1).is_truthy());
        assert!(!Value::str("").is_truthy());
        assert!(Value::str("x").is_truthy());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64).as_i64(), Some(3));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Double(4.0).as_i64(), Some(4));
        assert_eq!(Value::Double(4.5).as_i64(), None);
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::Null.as_f64(), None);
    }
}
