//! Shared error type for all ReStore crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the DFS, the MapReduce engine, the dataflow compiler,
/// and ReStore itself.
///
/// A single error enum keeps cross-crate plumbing simple; each variant
/// carries enough context to be actionable in tests and examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A DFS path does not exist.
    FileNotFound(String),
    /// A DFS path already exists and overwrite was not requested.
    FileExists(String),
    /// A path is syntactically invalid (empty, no leading '/', ...).
    InvalidPath(String),
    /// The DFS cluster cannot satisfy the requested replication.
    ReplicationUnsatisfiable { wanted: usize, live_nodes: usize },
    /// A datanode ran out of configured capacity.
    OutOfStorage { node: usize, needed: u64, free: u64 },
    /// Query text failed to lex/parse. Holds position and message.
    Parse { line: usize, col: usize, msg: String },
    /// Semantic analysis failed (unknown alias, bad field reference, ...).
    Plan(String),
    /// Expression evaluation failed at run time.
    Eval(String),
    /// A MapReduce job failed.
    Job(String),
    /// The workflow DAG is malformed (cycle, missing dependency).
    Workflow(String),
    /// Repository (de)serialization failure.
    Repository(String),
    /// A serialized `restore-state` document failed to parse. Carries
    /// the 1-based line number and the offending line so operators can
    /// pinpoint corruption in a snapshot file.
    State { line: usize, msg: String },
    /// A snapshot-journal segment failed to decode. Carries the 0-based
    /// segment index and the 1-based record ordinal within it, so a
    /// corrupt journal points at the offending record instead of a
    /// generic "malformed journal".
    Journal { segment: usize, record: usize, msg: String },
    /// A configuration value is invalid (e.g. an absurd shard count).
    Config(String),
    /// Record decoding failure when reading DFS files.
    Codec(String),
    /// Catch-all with context.
    Other(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::FileNotFound(p) => write!(f, "file not found: {p}"),
            Error::FileExists(p) => write!(f, "file already exists: {p}"),
            Error::InvalidPath(p) => write!(f, "invalid path: {p:?}"),
            Error::ReplicationUnsatisfiable { wanted, live_nodes } => {
                write!(f, "cannot place {wanted} replicas on {live_nodes} live datanodes")
            }
            Error::OutOfStorage { node, needed, free } => {
                write!(f, "datanode {node} out of storage: needed {needed} bytes, {free} free")
            }
            Error::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Job(m) => write!(f, "job error: {m}"),
            Error::Workflow(m) => write!(f, "workflow error: {m}"),
            Error::Repository(m) => write!(f, "repository error: {m}"),
            Error::State { line, msg } => {
                write!(f, "restore-state parse error at line {line}: {msg}")
            }
            Error::Journal { segment, record, msg } => {
                write!(f, "journal error in segment {segment} record {record}: {msg}")
            }
            Error::Config(m) => write!(f, "config error: {m}"),
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Build a parse error with position information.
    pub fn parse(line: usize, col: usize, msg: impl Into<String>) -> Self {
        Error::Parse { line, col, msg: msg.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::FileNotFound("/data/x".into());
        assert_eq!(e.to_string(), "file not found: /data/x");
        let e = Error::OutOfStorage { node: 3, needed: 10, free: 5 };
        assert!(e.to_string().contains("datanode 3"));
        let e = Error::parse(4, 7, "unexpected token");
        assert!(e.to_string().contains("4:7"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::Plan("x".into()), Error::Plan("x".into()));
        assert_ne!(Error::Plan("x".into()), Error::Eval("x".into()));
    }
}
