//! Schemas: named, typed field lists describing datasets and plan outputs.

use crate::error::{Error, Result};
use std::fmt;

/// Declared type of a field. Types are advisory (the engine is dynamically
/// typed) but the planner uses them for expression checking and the data
/// generators use them to synthesize values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    Int,
    Double,
    Chararray,
    /// A bag of tuples, produced by Group/CoGroup.
    Bag,
    /// Unknown/any, produced by operators that lose type information.
    Bytearray,
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FieldType::Int => "int",
            FieldType::Double => "double",
            FieldType::Chararray => "chararray",
            FieldType::Bag => "bag",
            FieldType::Bytearray => "bytearray",
        };
        f.write_str(s)
    }
}

impl FieldType {
    /// Parse a Pig-style type name.
    pub fn parse(s: &str) -> Option<FieldType> {
        match s {
            "int" | "long" => Some(FieldType::Int),
            "float" | "double" => Some(FieldType::Double),
            "chararray" => Some(FieldType::Chararray),
            "bag" => Some(FieldType::Bag),
            "bytearray" => Some(FieldType::Bytearray),
            _ => None,
        }
    }
}

/// A named, typed field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    pub name: String,
    pub ty: FieldType,
}

impl Field {
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        Field { name: name.into(), ty }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Empty schema (used by operators whose output shape is unknown).
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Schema from (name, type) pairs.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Convenience constructor from names with all-bytearray types.
    pub fn from_names(names: &[&str]) -> Self {
        Schema { fields: names.iter().map(|n| Field::new(*n, FieldType::Bytearray)).collect() }
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn field(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// Resolve a field name to its position.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Resolve a name or report a planning error listing the alternatives.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| {
            let known: Vec<&str> = self.fields.iter().map(|f| f.name.as_str()).collect();
            Error::Plan(format!("unknown field {name:?}; known fields: {known:?}"))
        })
    }

    /// Schema produced by projecting the given positions.
    pub fn project(&self, cols: &[usize]) -> Schema {
        Schema {
            fields: cols
                .iter()
                .map(|&c| {
                    self.fields
                        .get(c)
                        .cloned()
                        .unwrap_or_else(|| Field::new(format!("${c}"), FieldType::Bytearray))
                })
                .collect(),
        }
    }

    /// Concatenation of two schemas (Join output). Duplicate names are
    /// disambiguated with a `right::` prefix like Pig's `alias::field`.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            let name = if self.index_of(&f.name).is_some() {
                format!("right::{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.ty));
        }
        Schema { fields }
    }

    /// Append a field, returning the new position.
    pub fn push(&mut self, f: Field) -> usize {
        self.fields.push(f);
        self.fields.len() - 1
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", fld.name, fld.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pv() -> Schema {
        Schema::new(vec![
            Field::new("user", FieldType::Chararray),
            Field::new("timestamp", FieldType::Int),
            Field::new("est_revenue", FieldType::Double),
        ])
    }

    #[test]
    fn index_and_resolve() {
        let s = pv();
        assert_eq!(s.index_of("est_revenue"), Some(2));
        assert_eq!(s.resolve("user").unwrap(), 0);
        let err = s.resolve("nope").unwrap_err();
        assert!(err.to_string().contains("nope"));
        assert!(err.to_string().contains("user"));
    }

    #[test]
    fn projection_keeps_types() {
        let s = pv().project(&[2, 0]);
        assert_eq!(s.field(0).unwrap().name, "est_revenue");
        assert_eq!(s.field(0).unwrap().ty, FieldType::Double);
        assert_eq!(s.field(1).unwrap().name, "user");
    }

    #[test]
    fn projection_of_unknown_position_synthesizes_name() {
        let s = pv().project(&[9]);
        assert_eq!(s.field(0).unwrap().name, "$9");
    }

    #[test]
    fn join_disambiguates_duplicates() {
        let left = Schema::from_names(&["name", "phone"]);
        let right = Schema::from_names(&["name", "city"]);
        let j = left.join(&right);
        assert_eq!(j.index_of("name"), Some(0));
        assert_eq!(j.index_of("right::name"), Some(2));
        assert_eq!(j.index_of("city"), Some(3));
    }

    #[test]
    fn type_parsing() {
        assert_eq!(FieldType::parse("long"), Some(FieldType::Int));
        assert_eq!(FieldType::parse("double"), Some(FieldType::Double));
        assert_eq!(FieldType::parse("nope"), None);
    }

    #[test]
    fn display_format() {
        let s = Schema::new(vec![Field::new("a", FieldType::Int)]);
        assert_eq!(s.to_string(), "(a: int)");
    }
}
