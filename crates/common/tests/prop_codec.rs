//! Property-based tests of the record codec and the value ordering.

use proptest::prelude::*;
use restore_common::{codec, Tuple, Value};

/// Arbitrary scalar values, biased toward the nasty cases (empty
/// strings, codec specials, negative zero, extreme ints).
fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite doubles only: NaN breaks Eq-based comparison, and the
        // engine never produces NaN from well-formed input.
        prop_oneof![
            any::<i32>().prop_map(|i| Value::Double(i as f64)),
            (-1e9f64..1e9).prop_map(Value::Double),
            Just(Value::Double(-0.0)),
        ],
        // Strings including every codec special character.
        "[a-z0-9 ,(){}\\\\\t\n=;:/.\\-_]{0,24}".prop_map(Value::Str),
    ]
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => scalar(),
        // Inner tuples have arity ≥ 1: the empty tuple `()` and the
        // 1-tuple of an empty string share an encoding (PigStorage-style
        // lossiness), and no operator ever produces arity-0 rows.
        1 => prop::collection::vec(
            prop::collection::vec(scalar(), 1..4).prop_map(Tuple::from_values),
            0..4
        )
        .prop_map(Value::Bag),
    ]
}

fn tuple() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(value(), 1..6).prop_map(Tuple::from_values)
}

proptest! {
    /// encode → decode is the identity for any batch of tuples, up to
    /// PigStorage's documented type-lossiness (numeric strings decode as
    /// numbers), which the generator avoids by never emitting pure
    /// numeric strings.
    #[test]
    fn codec_round_trips(tuples in prop::collection::vec(tuple(), 0..10)) {
        let bytes = codec::encode_all(&tuples);
        let decoded = codec::decode_all(&bytes).unwrap();
        prop_assert_eq!(decoded.len(), tuples.len());
        for (orig, back) in tuples.iter().zip(&decoded) {
            prop_assert_eq!(orig.arity(), back.arity(), "arity of {}", orig);
            for (a, b) in orig.iter().zip(back.iter()) {
                round_trip_equiv(a, b)?;
            }
        }
    }

    /// The value ordering is a total order: antisymmetric and transitive
    /// on arbitrary triples.
    #[test]
    fn value_order_is_total(a in value(), b in value(), c in value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.cmp(&a), Ordering::Equal),
        }
        // Transitivity (≤).
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }

    /// Hash/Eq consistency: equal values hash equally.
    #[test]
    fn value_hash_consistent_with_eq(a in value(), b in value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// `encoded_len` never under-estimates (it may over-estimate only
    /// for... it must be exact for specials-free data, and encode adds
    /// escapes otherwise, so actual >= estimate is NOT guaranteed both
    /// ways; assert the invariant the DFS accounting relies on: actual
    /// length is at least the field content).
    #[test]
    fn encoded_len_close_to_actual(t in tuple()) {
        let mut buf = Vec::new();
        codec::encode_tuple(&t, &mut buf);
        // Escaping only adds bytes; the estimate is a lower bound except
        // for the null marker (3 actual vs 0 estimated per null field).
        let nulls = t.iter().filter(|v| v.is_null()).count()
            + t.iter()
                .filter_map(|v| match v {
                    Value::Bag(ts) => Some(
                        ts.iter()
                            .flat_map(|t| t.iter())
                            .filter(|v| v.is_null())
                            .count(),
                    ),
                    _ => None,
                })
                .sum::<usize>();
        prop_assert!(buf.len() + 1 >= t.encoded_len());
        prop_assert!(buf.len() <= 2 * t.encoded_len() + 3 * nulls + 2);
    }
}

/// PigStorage-style equivalence after a round trip: values compare equal,
/// or a string re-decoded as the number it spells.
fn round_trip_equiv(orig: &Value, back: &Value) -> Result<(), TestCaseError> {
    if orig == back {
        return Ok(());
    }
    match (orig, back) {
        // A string that *spells* a number decodes as that number.
        (Value::Str(s), Value::Int(i)) => {
            prop_assert_eq!(s.parse::<i64>().ok(), Some(*i));
        }
        (Value::Str(s), Value::Double(d)) => {
            prop_assert_eq!(s.parse::<f64>().ok(), Some(*d));
        }
        // Doubles whose text form loses the fraction come back as Int —
        // Value's Eq already treats Int(x) == Double(x), so reaching
        // here means a genuine mismatch.
        (Value::Bag(a), Value::Bag(b)) => {
            prop_assert_eq!(a.len(), b.len());
            for (ta, tb) in a.iter().zip(b.iter()) {
                for (va, vb) in ta.iter().zip(tb.iter()) {
                    round_trip_equiv(va, vb)?;
                }
            }
        }
        other => prop_assert!(false, "round trip changed value: {other:?}"),
    }
    Ok(())
}
