//! Test-runner support types: config, error, and the deterministic RNG.

use std::fmt;

/// Per-test configuration. Only the knobs the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Failure of one generated case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Compatibility alias (real proptest distinguishes rejects).
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 generator.
///
/// Seeded from the owning test's module path so every property has an
/// independent, reproducible stream; `PROPTEST_SEED` perturbs all
/// streams at once for exploratory runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf29ce484222325u64; // FNV offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            seed ^= extra
                .parse::<u64>()
                .unwrap_or_else(|_| extra.bytes().fold(0u64, |a, b| a.rotate_left(8) ^ b as u64));
        }
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` 0 yields 0.
    pub fn gen_u64_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded generation (Lemire); bias is negligible
        // for test-data bounds and determinism is what matters here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::deterministic("y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn bounds_hold() {
        let mut r = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            assert!(r.gen_u64_below(7) < 7);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
