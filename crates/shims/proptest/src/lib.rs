//! Minimal API-compatible stand-in for the `proptest` crate.
//!
//! The build environment is fully offline, so the workspace vendors the
//! subset of proptest its tests use: the [`Strategy`] trait with
//! `prop_map`, the `proptest!` / `prop_oneof!` / `prop_assert*` macros,
//! ranges and `any::<T>()` as strategies, and the `collection`, `sample`,
//! `option`, and string-regex strategy families.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its generated inputs
//!   verbatim; cases are deterministic per test name, so failures
//!   reproduce exactly on re-run.
//! * **Fixed RNG.** SplitMix64 seeded from the test's module path (or the
//!   `PROPTEST_SEED` environment variable), so runs are bit-reproducible.
//! * The string strategy implements the character-class subset of regex
//!   syntax (`[class]{lo,hi}` sequences), which is all the tests use.

pub mod test_runner;

use std::fmt::Debug;
use std::ops::Range;

pub use test_runner::{TestCaseError, TestRng};

/// A source of random values of one type.
///
/// Object-safe so heterogeneous variants can be boxed by `prop_oneof!`.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Box the strategy behind a trait object.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of same-valued strategies — built by `prop_oneof!`.
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T: Debug> Union<T> {
    pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.variants.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.gen_u64_below(total.max(1));
        for (w, s) in &self.variants {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.variants.last().unwrap().1.generate(rng)
    }
}

// ---- ranges as strategies ----

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.gen_u64_below(width) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.gen_f64() as f32 * (self.end - self.start)
    }
}

// ---- any::<T>() ----

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite full-range doubles (no NaN/inf), like proptest's default.
        f64::from_bits(rng.next_u64() & !(0x7ff << 52))
            * if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 }
    }
}

/// Marker strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- tuples of strategies ----

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ---- string regex-subset strategies ----

enum Atom {
    Class(Vec<char>),
    Lit(char),
}

/// `&str` as a strategy: the pattern is parsed as a sequence of atoms
/// (character class or literal), each with an optional `{lo,hi}` / `{n}` /
/// `*` / `+` / `?` repetition. This covers the character-class patterns
/// the workspace tests use; unsupported syntax panics loudly.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let n = *lo as u64 + rng.gen_u64_below((*hi - *lo + 1) as u64);
            for _ in 0..n {
                match atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(cs) => out.push(cs[rng.gen_u64_below(cs.len() as u64) as usize]),
                }
            }
        }
        out
    }
}

fn parse_pattern(pat: &str) -> Vec<(Atom, u32, u32)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    // Range `a-z`: a bare dash between two class members.
                    if i + 2 < chars.len()
                        && chars[i] != '\\'
                        && chars[i + 1] == '-'
                        && chars[i + 2] != ']'
                    {
                        let hi = if chars[i + 2] == '\\' {
                            i += 1;
                            unescape(chars[i + 2])
                        } else {
                            chars[i + 2]
                        };
                        for x in c..=hi {
                            set.push(x);
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class in {pat:?}");
                i += 1; // consume ']'
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                Atom::Lit(c)
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                    "unsupported regex syntax {c:?} in {pat:?}"
                );
                i += 1;
                Atom::Lit(c)
            }
        };
        // Optional repetition.
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close =
                        chars[i..].iter().position(|&c| c == '}').expect("unterminated repetition")
                            + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.parse().expect("bad repetition lower bound"),
                            b.parse().expect("bad repetition upper bound"),
                        ),
                        None => {
                            let n: u32 = body.parse().expect("bad repetition count");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

// ---- strategy families ----

pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl SizeRange {
        pub fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.gen_u64_below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};
    use crate::collection::SizeRange;
    use std::fmt::Debug;

    /// An index into a collection of then-unknown size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(f64);

    impl Index {
        /// Project onto `0..len`. Panics on `len == 0` like real proptest.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 * len as f64) as usize).min(len - 1)
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.gen_f64())
        }
    }

    pub struct Select<T> {
        choices: Vec<T>,
    }

    /// Uniformly pick one of the given values.
    pub fn select<T: Clone + Debug>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select from empty set");
        Select { choices }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.gen_u64_below(self.choices.len() as u64) as usize].clone()
        }
    }

    pub struct Subsequence<T> {
        source: Vec<T>,
        size: SizeRange,
    }

    /// Order-preserving random subsequence with size in the given range.
    pub fn subsequence<T: Clone + Debug>(
        source: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> Subsequence<T> {
        let size = size.into();
        assert!(size.hi <= source.len(), "subsequence larger than source");
        Subsequence { source, size }
    }

    impl<T: Clone + Debug> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let want = self.size.pick(rng);
            // Reservoir-style pick of `want` positions, then sort to keep order.
            let mut picks: Vec<usize> = (0..self.source.len()).collect();
            for i in (1..picks.len()).rev() {
                let j = rng.gen_u64_below((i + 1) as u64) as usize;
                picks.swap(i, j);
            }
            picks.truncate(want);
            picks.sort_unstable();
            picks.into_iter().map(|i| self.source[i].clone()).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_u64_below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, BoxedStrategy, Just, Strategy};
}

// ---- macros ----

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let strategy = ($($strat,)+);
            for case in 0..config.cases {
                let values = $crate::Strategy::generate(&strategy, &mut rng);
                let description = format!("{:?}", values);
                let ($($arg,)+) = values;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        description
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = (3i64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_respects_class_and_count() {
        let mut rng = TestRng::deterministic("strings");
        let strat = "[a-c0-1\\-]{2,5}";
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc01-".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn oneof_weights_and_union() {
        let mut rng = TestRng::deterministic("oneof");
        let strat = prop_oneof![4 => Just(1u8), 1 => Just(2u8)];
        let mut ones = 0;
        for _ in 0..500 {
            if strat.generate(&mut rng) == 1 {
                ones += 1;
            }
        }
        assert!(ones > 300, "weighted pick skewed the wrong way: {ones}");
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = TestRng::deterministic("subseq");
        let strat = crate::sample::subsequence(vec![1, 2, 3, 4, 5], 2..=4);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, asserts work, `?` propagates.
        #[test]
        fn macro_smoke(a in 0u8..10, v in prop::collection::vec(0i64..5, 0..4)) {
            prop_assert!(a < 10);
            prop_assert_eq!(v.len(), v.len());
            helper(&v)?;
        }
    }

    fn helper(v: &[i64]) -> Result<(), TestCaseError> {
        prop_assert!(v.len() < 4, "vec too long");
        Ok(())
    }

    use crate::test_runner::TestRng;
    use crate::Strategy;
}
