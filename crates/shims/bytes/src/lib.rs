//! Minimal API-compatible stand-in for the `bytes` crate.
//!
//! Provides the one type the workspace uses: [`Bytes`], an immutable,
//! reference-counted byte buffer whose clones and sub-slices share the
//! same backing allocation — exactly the property the simulated DFS
//! relies on so block replicas cost one allocation, not three.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable bytes: an `Arc<[u8]>` plus a window.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static slice (no copy is observable; the slice is shared).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-slice sharing the same backing buffer.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_shares_backing() {
        let b = Bytes::from(b"0123456789".to_vec());
        let s = b.slice(2..5);
        assert_eq!(&s[..], b"234");
        assert_eq!(s.slice(1..).as_slice(), b"34");
        assert_eq!(b.len(), 10);
        assert!(Arc::ptr_eq(&b.data, &s.data));
    }

    #[test]
    fn empty_and_bounds() {
        let b = Bytes::new();
        assert!(b.is_empty());
        let c = Bytes::from_static(b"abc");
        assert_eq!(c.slice(..).len(), 3);
        assert_eq!(c.slice(3..3).len(), 0);
    }
}
