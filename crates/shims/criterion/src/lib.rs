//! Minimal API-compatible stand-in for the `criterion` crate.
//!
//! The build environment is fully offline, so the workspace vendors the
//! subset of criterion its benches use: `Criterion`, benchmark groups
//! with `sample_size` / `throughput` / `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — one warm-up iteration, then
//! `sample_size` timed iterations — and reports min / mean / max wall
//! time plus derived throughput. Results are printed to stdout and, when
//! `CRITERION_JSON` names a file, appended to it as JSON lines so the
//! experiment harness can archive `BENCH_*.json` snapshots.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Hierarchical benchmark name: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        self.times.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

/// The harness entry point.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let default_samples =
            std::env::var("CRITERION_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(10);
        Criterion { default_samples }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), samples: None, throughput: None }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let samples = self.default_samples;
        run_one(None, &id.into_benchmark_id().name, samples, None, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let samples = self.samples.unwrap_or(self.criterion.default_samples);
        run_one(Some(&self.name), &id.into_benchmark_id().name, samples, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let mut b = Bencher { samples: samples.max(1), times: Vec::new() };
    f(&mut b);
    if b.times.is_empty() {
        println!("{full:<48} (no iterations run)");
        return;
    }
    let total: Duration = b.times.iter().sum();
    let mean = total / b.times.len() as u32;
    let min = *b.times.iter().min().unwrap();
    let max = *b.times.iter().max().unwrap();
    let rate = throughput
        .map(|t| {
            let per_s = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(n) => format!("  {:>12.0} B/s", per_s(n)),
                Throughput::Elements(n) => format!("  {:>12.0} elem/s", per_s(n)),
            }
        })
        .unwrap_or_default();
    println!("{full:<48} time: [{:>10?} {:>10?} {:>10?}]{rate}", min, mean, max);
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                file,
                "{{\"bench\":\"{full}\",\"samples\":{},\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{}}}",
                b.times.len(),
                min.as_nanos(),
                mean.as_nanos(),
                max.as_nanos(),
            );
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 10), &10, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<i32>()
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
