//! Minimal API-compatible stand-in for the `parking_lot` crate.
//!
//! The build environment is fully offline, so the workspace vendors the
//! subset of `parking_lot` it uses: [`Mutex`] and [`RwLock`] whose lock
//! methods return guards directly (no poisoning). A poisoned std lock can
//! only arise from a panicking holder; this shim propagates the panic by
//! unwrapping, which matches parking_lot's behavior of simply releasing
//! the lock (any invariant violation then surfaces at the caller).

use std::fmt;
use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_variants() {
        let l = RwLock::new(0u8);
        let g = l.write();
        assert!(l.try_read().is_none());
        assert!(l.try_write().is_none());
        drop(g);
        assert!(l.try_read().is_some());
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
