//! Checkpoint capture cost: the full `restore-state` dump vs the
//! snapshot journal's incremental delta, across repository sizes.
//!
//! Two arms per size:
//!
//! * `full_dump` — `save_state()`: serializes every entry of every
//!   namespace. Cost grows with the repository — this is the stall the
//!   journal exists to eliminate.
//! * `delta` — a fixed-size working set is dirtied (16 entries
//!   reused via `note_use`), then `save_state_delta()` drains the
//!   journal. Cost tracks **dirty size**, so the curve stays flat
//!   while `full_dump` climbs with the repository.
//!
//! Repository sizes default to 10² / 10³ / 10⁴ entries;
//! `SNAPSHOT_SIZES` (comma-separated) trims the matrix — CI smoke runs
//! `SNAPSHOT_SIZES=100`. Results archive as `BENCH_snapshot.json` via
//! `CRITERION_JSON`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use restore_core::{JournalConfig, ReStore, ReStoreConfig, RepoStats};
use restore_dataflow::expr::Expr;
use restore_dataflow::physical::{PhysicalOp, PhysicalPlan};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use std::hint::black_box;

/// Entries touched per delta round — the fixed dirty working set.
const DIRTY_USES: u64 = 16;

/// A distinct Load→Filter→Project→Store plan per index.
fn entry_plan(i: usize) -> PhysicalPlan {
    let mut p = PhysicalPlan::new();
    let l = p.add(PhysicalOp::Load { path: format!("/data/t{}", i % 7) }, vec![]);
    let f = p.add(PhysicalOp::Filter { pred: Expr::col_eq(i % 5, i as i64) }, vec![l]);
    let pr = p.add(PhysicalOp::Project { cols: vec![0, (i % 3) + 1] }, vec![f]);
    p.add(PhysicalOp::Store { path: format!("/repo/{i}") }, vec![pr]);
    p
}

fn stats(i: usize, n: usize) -> RepoStats {
    RepoStats {
        input_bytes: 10 * n as u64 - i as u64,
        output_bytes: 100,
        job_time_s: (n - i) as f64,
        ..Default::default()
    }
}

/// A session whose default namespace holds `n` synthetic entries, with
/// the journal enabled *after* population (the entries belong to the
/// base, not the delta).
fn session_of(n: usize) -> ReStore {
    let dfs = Dfs::new(DfsConfig::small_for_tests());
    for i in 0..n {
        dfs.write_all(&format!("/repo/{i}"), b"x").unwrap();
    }
    let engine = Engine::new(dfs, ClusterConfig::default(), EngineConfig::default());
    let rs = ReStore::new(engine, ReStoreConfig::default());
    rs.with_repository_mut_as(None, |repo| {
        repo.batch(|b| {
            for i in 0..n {
                b.insert(entry_plan(i), format!("/repo/{i}"), stats(i, n));
            }
        })
    });
    rs.enable_journal(JournalConfig::default());
    rs
}

fn sizes() -> Vec<usize> {
    match std::env::var("SNAPSHOT_SIZES") {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => vec![100, 1_000, 10_000],
    }
}

fn bench_snapshot(c: &mut Criterion) {
    for &n in &sizes() {
        let rs = session_of(n);
        let mut tick = 0u64;

        // ---- full_dump: O(repository) every time ----
        {
            let mut group = c.benchmark_group(format!("snapshot_full_dump/n{n}"));
            group.throughput(Throughput::Elements(1));
            group.bench_function("capture", |b| {
                b.iter(|| black_box(rs.save_state().len()));
            });
            group.finish();
        }

        // ---- delta: O(dirty) regardless of repository size ----
        {
            // Drain anything the setup left behind so every measured
            // capture sees exactly one round's dirt.
            rs.save_state_delta().unwrap();
            let mut group = c.benchmark_group(format!("snapshot_delta/n{n}"));
            group.throughput(Throughput::Elements(DIRTY_USES));
            group.bench_function(format!("dirty{DIRTY_USES}"), |b| {
                b.iter(|| {
                    rs.with_repository_as(None, |repo| {
                        for id in 0..DIRTY_USES {
                            tick += 1;
                            repo.note_use(id % n as u64, tick);
                        }
                    });
                    let segs = rs.save_state_delta().unwrap();
                    assert!(!segs.is_empty(), "a dirtied round must capture something");
                    black_box(segs.iter().map(String::len).sum::<usize>())
                });
            });
            group.finish();
        }
    }
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
