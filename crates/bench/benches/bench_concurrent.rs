//! Shared-session throughput: queries/second through one warmed `ReStore`
//! instance as the number of submitting threads grows (1/2/4/8).
//!
//! Two regimes:
//! * `warm` — every query is answered from the repository (whole-job
//!   reuse), so the benchmark isolates the match-loop and lock-contention
//!   cost of the shared session;
//! * `mixed` — each round uses fresh output paths, so jobs with reusable
//!   prefixes still execute, exercising wave-parallel execution plus
//!   concurrent registration on the write path.
//!
//! Each arm also reports the repository's write-side counters as
//! per-round deltas (`publishes/round`, `writer_sections/round`, from
//! [`ReStore::write_counters_as`]): warm rounds must show ~0 — serving
//! is read-only — while mixed rounds expose the registration churn the
//! sharded write path parallelizes. The numbers are printed after each
//! group and archived with the entries in `BENCH_concurrent.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use restore_core::{ReStore, ReStoreConfig};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_pigmix::{datagen, queries, DataScale};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

const SEED: u64 = 0xBE_2C_11;

fn shared_session() -> ReStore {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 2048, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), SEED).expect("data generation");
    let engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 2 },
    );
    ReStore::new(engine, ReStoreConfig::default())
}

/// The per-thread query mix: one multi-job workflow + two single-job ones.
fn mix(tag: &str) -> Vec<(String, String)> {
    vec![
        (queries::l3(&format!("/out/{tag}/l3")), format!("/wf/{tag}/l3")),
        (queries::l7(&format!("/out/{tag}/l7")), format!("/wf/{tag}/l7")),
        (queries::l8(&format!("/out/{tag}/l8")), format!("/wf/{tag}/l8")),
    ]
}

fn submit_round(rs: &ReStore, threads: usize, round: u64) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let rs = &*rs;
            scope.spawn(move || {
                for (q, prefix) in mix(&format!("r{round}-t{t}")) {
                    black_box(rs.execute_query(&q, &prefix).expect("query"));
                }
            });
        }
    });
}

/// Accumulates write-side counter deltas across measured rounds so the
/// archive can state how much write traffic each regime generated.
struct WriteCounterProbe<'a> {
    rs: &'a ReStore,
    rounds: AtomicU64,
    publishes: AtomicU64,
    sections: AtomicU64,
}

impl<'a> WriteCounterProbe<'a> {
    fn new(rs: &'a ReStore) -> Self {
        WriteCounterProbe {
            rs,
            rounds: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            sections: AtomicU64::new(0),
        }
    }

    /// Run `round` bracketed by counter reads and bank the delta.
    fn observe(&self, round: impl FnOnce()) {
        let (p0, s0) = self.rs.write_counters_as(None);
        round();
        let (p1, s1) = self.rs.write_counters_as(None);
        self.rounds.fetch_add(1, Ordering::Relaxed);
        self.publishes.fetch_add(p1 - p0, Ordering::Relaxed);
        self.sections.fetch_add(s1 - s0, Ordering::Relaxed);
    }

    /// Mean per-round deltas (includes the untimed warm-up round).
    fn report(&self, label: &str) {
        let rounds = self.rounds.load(Ordering::Relaxed).max(1);
        println!(
            "{label:<48} counters: publishes/round={:.1} writer_sections/round={:.1}",
            self.publishes.load(Ordering::Relaxed) as f64 / rounds as f64,
            self.sections.load(Ordering::Relaxed) as f64 / rounds as f64,
        );
    }
}

/// `(family, labels, count, raw-ns sum)` for every pipeline stage and
/// match sub-stage series the session has recorded.
fn stage_rows(rs: &ReStore) -> Vec<(String, String, u64, u64)> {
    let mut rows = Vec::new();
    for family in ["restore_stage_seconds", "restore_match_stage_seconds"] {
        for (labels, count, sum_ns) in rs.registry().histogram_stats(family) {
            rows.push((family.to_string(), labels, count, sum_ns));
        }
    }
    rows
}

/// Prints per-stage telemetry as a **delta against `baseline`** (taken
/// after the cold warm-up round), heaviest first: observation count,
/// total time, and mean per observation. The delta isolates the
/// measured rounds — without it the cold round's real MR executions
/// would swamp the warm-regime numbers. This is the read path the
/// warm-round cost analysis in DESIGN.md comes from.
fn report_stages(rs: &ReStore, baseline: &[(String, String, u64, u64)], label: &str) {
    let mut rows = stage_rows(rs);
    for row in &mut rows {
        if let Some(b) = baseline.iter().find(|b| b.0 == row.0 && b.1 == row.1) {
            row.2 -= b.2;
            row.3 -= b.3;
        }
    }
    rows.sort_by_key(|row| std::cmp::Reverse(row.3));
    for (family, labels, count, sum_ns) in rows {
        if count == 0 {
            continue;
        }
        println!(
            "{label:<48} {family}{labels} count={count} total_ms={:.2} mean_us={:.1}",
            sum_ns as f64 / 1e6,
            sum_ns as f64 / count as f64 / 1e3,
        );
    }
}

fn bench_warm_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_warm");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        // Fresh warmed session per thread count; round 0 fills the
        // repository so measured rounds are pure repository serving.
        let rs = shared_session();
        submit_round(&rs, threads, 0);
        let baseline = stage_rows(&rs);
        let round = AtomicU64::new(1);
        let probe = WriteCounterProbe::new(&rs);
        group.throughput(Throughput::Elements((threads * 3) as u64));
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &threads| {
            b.iter(|| {
                probe.observe(|| submit_round(&rs, threads, round.fetch_add(1, Ordering::Relaxed)))
            });
        });
        probe.report(&format!("concurrent_warm/threads/{threads}"));
        report_stages(&rs, &baseline, &format!("concurrent_warm/threads/{threads}"));
    }
    group.finish();
}

fn bench_mixed_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_mixed");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        let rs = shared_session();
        // Paper-experiment mode: final outputs are not registered, so
        // every round re-executes final jobs over reused prefixes.
        let mut cfg = rs.config();
        cfg.register_final_outputs = false;
        rs.set_config(cfg);
        submit_round(&rs, threads, 0);
        let baseline = stage_rows(&rs);
        let round = AtomicU64::new(1);
        let probe = WriteCounterProbe::new(&rs);
        group.throughput(Throughput::Elements((threads * 3) as u64));
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &threads| {
            b.iter(|| {
                probe.observe(|| submit_round(&rs, threads, round.fetch_add(1, Ordering::Relaxed)))
            });
        });
        probe.report(&format!("concurrent_mixed/threads/{threads}"));
        report_stages(&rs, &baseline, &format!("concurrent_mixed/threads/{threads}"));
    }
    group.finish();
}

criterion_group!(benches, bench_warm_serving, bench_mixed_workload);
criterion_main!(benches);
