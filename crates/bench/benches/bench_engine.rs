//! MapReduce engine throughput: records/second through a full
//! map-shuffle-reduce cycle at varying input sizes and thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use restore_common::{codec, tuple, Tuple};
use restore_dataflow::exec::job_spec_for_plan;
use restore_dataflow::expr::{AggFunc, Expr};
use restore_dataflow::physical::{AggItem, PhysicalOp, PhysicalPlan};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use std::hint::black_box;

fn setup(rows: usize, threads: usize) -> (Engine, restore_mapreduce::JobSpec) {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 16 << 10, replication: 1, node_capacity: None });
    let data: Vec<Tuple> =
        (0..rows).map(|i| tuple![format!("k{}", i % 97), i as i64, (i % 1000) as f64]).collect();
    dfs.write_all("/in", &codec::encode_all(&data)).unwrap();
    let engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: threads, default_reduce_tasks: 4 },
    );
    // Filter -> Group -> Aggregate: a representative shuffle job.
    let mut plan = PhysicalPlan::new();
    let l = plan.add(PhysicalOp::Load { path: "/in".into() }, vec![]);
    let f = plan.add(
        PhysicalOp::Filter {
            pred: Expr::Cmp(
                Box::new(Expr::Col(1)),
                restore_dataflow::expr::CmpOp::Ge,
                Box::new(Expr::Lit(0i64.into())),
            ),
        },
        vec![l],
    );
    let g = plan.add(PhysicalOp::Group { keys: vec![0] }, vec![f]);
    let a = plan.add(
        PhysicalOp::Aggregate {
            items: vec![
                AggItem::Key(0),
                AggItem::Agg { func: AggFunc::Sum, bag_col: 1, field: Some(2) },
            ],
        },
        vec![g],
    );
    plan.add(PhysicalOp::Store { path: "/out".into() }, vec![a]);
    let spec = job_spec_for_plan(&plan, "bench").unwrap();
    (engine, spec)
}

fn bench_job_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_group_sum");
    group.sample_size(10);
    for &rows in &[1_000usize, 10_000] {
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("rows", rows), &rows, |b, &rows| {
            let (engine, spec) = setup(rows, 4);
            b.iter(|| black_box(engine.run(black_box(&spec)).unwrap()));
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_threads");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &threads| {
            let (engine, spec) = setup(10_000, threads);
            b.iter(|| black_box(engine.run(black_box(&spec)).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_job_throughput, bench_thread_scaling);
criterion_main!(benches);
