//! Service-level throughput: a mixed-tenant PigMix workload submitted
//! through `RestoreService` as the worker pool grows (1/2/4/8).
//!
//! Three regimes:
//! * `service_warm` — every query is answered from its tenant's
//!   repository, isolating queue + scheduler + lock overhead;
//! * `service_mixed` — fresh output paths each round (final outputs not
//!   registered), so jobs with reusable prefixes still execute and the
//!   cross-workflow scheduler overlaps work from different tenants;
//! * `service_fifo` — the mixed workload with cross-workflow overlap
//!   disabled (strict FIFO dispatch), the scheduling ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use restore_core::{ReStore, ReStoreConfig};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_pigmix::{datagen, queries, DataScale};
use restore_service::{RestoreService, ServiceConfig};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

const SEED: u64 = 0x5E_ED_CE;
const TENANTS: [&str; 4] = ["ana", "bo", "carol", "dee"];

fn service(workers: usize, cross_workflow: bool, register_final: bool) -> RestoreService {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 2048, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), SEED).expect("data generation");
    let engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 2 },
    );
    let rs = ReStore::new(
        engine,
        ReStoreConfig { register_final_outputs: register_final, ..Default::default() },
    );
    RestoreService::new(
        rs,
        ServiceConfig { workers, queue_depth: 256, max_inflight_per_tenant: 64, cross_workflow },
    )
}

/// The per-tenant query mix: one multi-job workflow + two single-job ones.
fn mix(tag: &str) -> Vec<(String, String)> {
    vec![
        (queries::l3(&format!("/out/{tag}/l3")), format!("/wf/{tag}/l3")),
        (queries::l7(&format!("/out/{tag}/l7")), format!("/wf/{tag}/l7")),
        (queries::l8(&format!("/out/{tag}/l8")), format!("/wf/{tag}/l8")),
    ]
}

/// Submit the whole mixed-tenant round, then wait for every handle.
fn submit_round(svc: &RestoreService, round: u64) {
    let mut handles = Vec::new();
    for t in TENANTS {
        for (q, prefix) in mix(&format!("r{round}-{t}")) {
            handles.push(svc.submit(Some(t), &q, &prefix).expect("admitted"));
        }
    }
    for h in handles {
        black_box(h.wait().expect("query completes"));
    }
}

fn bench_group(c: &mut Criterion, name: &str, cross_workflow: bool, register_final: bool) {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    for &workers in &[1usize, 2, 4, 8] {
        let svc = service(workers, cross_workflow, register_final);
        // Round 0 warms each tenant's repository.
        submit_round(&svc, 0);
        let round = AtomicU64::new(1);
        group.throughput(Throughput::Elements((TENANTS.len() * 3) as u64));
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| submit_round(&svc, round.fetch_add(1, Ordering::Relaxed)));
        });
    }
    group.finish();
}

fn bench_warm_serving(c: &mut Criterion) {
    bench_group(c, "service_warm", true, true);
}

fn bench_mixed_workload(c: &mut Criterion) {
    bench_group(c, "service_mixed", true, false);
}

fn bench_fifo_ablation(c: &mut Criterion) {
    bench_group(c, "service_fifo", false, false);
}

criterion_group!(benches, bench_warm_serving, bench_mixed_workload, bench_fifo_ablation);
criterion_main!(benches);
