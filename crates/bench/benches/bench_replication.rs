//! Replication cost along the two axes that matter for a warm standby:
//!
//! * `replication_warm` — steady-state overhead of shipping on the warm
//!   path. Both arms run a warm two-job workflow on a journaling
//!   session under the continuous-checkpoint cadence (one delta capture
//!   per workflow — the deployment replication slots into); `shipping`
//!   additionally has a replicator attached with one shipping beat per
//!   workflow. Shipping *shares* the checkpoint's sealed segments (seal
//!   vs cut), so the arm delta (compare `min_ns` — the least-noisy
//!   statistic the harness records) isolates the true marginal cost:
//!   the tap, the segment clone, and the queue push. Budget: ≤5%.
//! * `replication_promote` — failover latency as a function of
//!   unshipped work: promote a standby whose replay queue holds 0 / 4 /
//!   16 workflows' worth of shipments. Promotion drains the queue,
//!   verifies seq parity, and starts a worker pool — no checkpoint is
//!   read, so this is the "recovery time" axis a cold restart pays in
//!   full.
//!
//! `REPLICATION_QUEUED` (comma-separated) trims the promote matrix —
//! CI smoke runs `REPLICATION_QUEUED=4`. Results archive as
//! `BENCH_replication.json` via `CRITERION_JSON`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use restore_core::{
    InProcessLink, JournalConfig, ReStore, ReStoreConfig, ReplicationTransport, Replicator,
};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_service::{ServiceConfig, Standby};
use std::hint::black_box;
use std::sync::Arc;

const PROMOTE_SAMPLES: usize = 5;

fn dfs() -> Dfs {
    let dfs = Dfs::new(DfsConfig::small_for_tests());
    dfs.write_all("/data/pv", b"alice\t4\nbob\t7\nalice\t1\ncarol\t9\n").unwrap();
    dfs.write_all("/data/users", b"alice\tkitchener\nbob\ttoronto\n").unwrap();
    dfs
}

fn plain_session(dfs: Dfs) -> ReStore {
    let engine = Engine::new(dfs, ClusterConfig::default(), EngineConfig::default());
    ReStore::new(engine, ReStoreConfig::default())
}

fn session(dfs: Dfs) -> Arc<ReStore> {
    Arc::new(plain_session(dfs))
}

fn sum_query(out: &str) -> String {
    format!(
        "A = load '/data/pv' as (user, n:int);
         G = group A by user;
         R = foreach G generate group, SUM(A.n);
         store R into '{out}';"
    )
}

/// A two-job workflow (join, then group) — the warm-path measurement
/// unit. A single tiny job would put the pump's fixed ~µs beat cost
/// over any relative budget; a real workflow is the denominator the
/// overhead budget is stated against.
fn join_query(out: &str) -> String {
    format!(
        "A = load '/data/pv' as (user, revenue:int);
         B = load '/data/users' as (name, city);
         C = join B by name, A by user;
         D = group C by $0;
         E = foreach D generate group, SUM(C.revenue);
         store E into '{out}';"
    )
}

fn queued_counts() -> Vec<usize> {
    match std::env::var("REPLICATION_QUEUED") {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => vec![0, 4, 16],
    }
}

/// A standby whose replay queue holds `queued` workflows' worth of
/// shipments, with its primary already gone — exactly what promotion
/// finds after a crash.
fn prepared_standby(queued: usize, salt: usize) -> Standby {
    let dfs = dfs();
    let primary = session(dfs.clone());
    primary.enable_journal(JournalConfig::default());
    primary.execute_query(&sum_query(&format!("/out/p{salt}/seed")), "/wf/seed").unwrap();
    let link = InProcessLink::new();
    let rep = Replicator::attach(primary.clone(), link.clone()).expect("attach");
    let standby = Standby::attach_manual(plain_session(dfs), link);
    assert!(standby.tail_all() >= 1, "the anchoring base must arrive");
    for q in 0..queued {
        let warm = primary.execute_query(&sum_query(&format!("/out/p{salt}/{q}")), "/wf/w");
        assert_eq!(warm.unwrap().jobs_skipped, 1);
        rep.pump().expect("shipping beat");
    }
    drop(rep);
    standby
}

fn bench_replication(c: &mut Criterion) {
    // ---- steady-state shipping overhead on the warm path ----
    {
        let shared = dfs();
        let mut group = c.benchmark_group("replication_warm");
        group.throughput(Throughput::Elements(1));

        let off = session(shared.clone());
        off.enable_journal(JournalConfig::default());
        off.execute_query(&join_query("/out/off/seed"), "/wf/seed").unwrap();
        let mut i = 0usize;
        group.bench_function("off", |b| {
            b.iter(|| {
                i += 1;
                let e = off.execute_query(&join_query(&format!("/out/off/{i}")), "/wf/w").unwrap();
                assert!(e.jobs_skipped >= 1, "the measured path must stay warm");
                black_box(off.save_state_delta().unwrap().len())
            });
        });

        // Shipping arm: replicator attached, one beat per workflow. The
        // transport's far end is consumed without replay — the standby
        // applies on its own machine in the deployment this models, so
        // its CPU must not leak into the primary's wall clock (this
        // harness runs on a single core). Replay cost is measured
        // separately by the promote arm below.
        let primary = session(shared.clone());
        primary.enable_journal(JournalConfig::default());
        primary.execute_query(&join_query("/out/on/seed"), "/wf/seed").unwrap();
        let link = InProcessLink::new();
        let rep = Replicator::attach(primary.clone(), link.clone()).expect("attach");
        while link.try_recv().is_some() {}
        let mut j = 0usize;
        let mut shipped = 0usize;
        group.bench_function("shipping", |b| {
            b.iter(|| {
                j += 1;
                let e =
                    primary.execute_query(&join_query(&format!("/out/on/{j}")), "/wf/w").unwrap();
                assert!(e.jobs_skipped >= 1, "the measured path must stay warm");
                rep.pump().expect("shipping beat");
                let captured = primary.save_state_delta().unwrap().len();
                while link.try_recv().is_some() {
                    shipped += 1;
                }
                black_box(captured)
            });
        });
        assert!(shipped >= j, "every beat must have shipped its segment");
        group.finish();
    }

    // ---- promote latency vs unshipped workflows ----
    for &queued in &queued_counts() {
        let mut prepared: Vec<Standby> =
            (0..PROMOTE_SAMPLES + 1).map(|k| prepared_standby(queued, k)).collect();
        let mut promoted = Vec::new();
        let mut group = c.benchmark_group(format!("replication_promote/queued{queued}"));
        group.sample_size(PROMOTE_SAMPLES);
        group.bench_function("promote", |b| {
            b.iter(|| {
                let standby = prepared.pop().expect("one prepared standby per sample");
                let config = ServiceConfig {
                    workers: 1,
                    queue_depth: 16,
                    max_inflight_per_tenant: 16,
                    cross_workflow: false,
                };
                promoted.push(standby.promote(config).expect("parity holds"));
            });
        });
        group.finish();
        for svc in promoted {
            svc.shutdown();
        }
    }
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
