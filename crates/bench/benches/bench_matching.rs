//! Concurrent repository-matching throughput: the pre-refactor locked
//! design vs the RCU snapshot design, across repository sizes and
//! submitting threads.
//!
//! Two ablation arms, identical match kernels:
//!
//! * `locked_scan` — the old architecture: every match takes a
//!   repository-wide `RwLock` read guard and runs the paper's §3
//!   sequential scan under it; every *hit* then takes the **write**
//!   guard to bump the reuse statistics, serializing all readers.
//! * `snapshot_indexed` — the current architecture: each match grabs
//!   the RCU snapshot (lock-free), filters candidates through the
//!   inverted tip-signature index, and records the reuse through the
//!   entry's shared atomics. No lock is ever taken; the bench asserts
//!   the publish counter stays frozen.
//!
//! Repository sizes default to 10² / 10³ / 10⁴ entries and 1/2/4/8
//! threads; `MATCHING_SIZES` (comma-separated) trims the matrix — CI
//! smoke runs `MATCHING_SIZES=100`. Results archive as
//! `BENCH_matching.json` via `CRITERION_JSON`.
//!
//! A third arm, `matching_bulk_indexed`, pushes the snapshot design to
//! 10⁵ entries (override with `MATCHING_BULK_SIZES`): ordered
//! insertion is O(n²) in pairwise subsumption checks, so the corpus is
//! built with [`Repository::bulk_load`] — O(n log n) rule-2 ordering,
//! valid because the generated plans are pairwise incomparable. Only
//! the indexed match path runs at this size (the locked sequential
//! scan would take minutes per round).
//!
//! A fourth arm, `matching_bulk_telemetry`, measures the cost of
//! observation itself: the driver's instrumented match path (probed
//! matcher + counter/histogram recording) against the bare indexed
//! matcher on the same corpus, and asserts the instrumented path stays
//! within 5% (interleaved min-of-rounds).
//!
//! A fifth arm, `insert_sharded`, is the **write-path** ablation: 1/2/
//! 4/8 writer threads registering disjoint plan corpora into a
//! repository striped 1 vs 8 ways (`MATCHING_SHARDS` overrides the
//! shard list). Single-shard, every insert serializes on one writer
//! section and its §3 ordering scan walks the whole repository;
//! striped, writers whose tip signatures hash to different shards
//! insert fully in parallel against 8× shorter scans.
//!
//! A sixth arm, `paraphrase_reuse`, is the **analyzer** ablation:
//! each round drives the paraphrased-PigMix suite (every query plus
//! 3–5 semantically-equal rewrites) end-to-end through a fresh ReStore
//! session with `ReStoreConfig::canonicalize` on vs off, asserting the
//! warm-hit counts (on: every paraphrase served from the repository;
//! off: none). The timing delta is the work reuse saves; the hit rates
//! archive alongside in `BENCH_matching.json`.
//!
//! A seventh arm, `canon_compile`, prices the analyzer itself:
//! `compile` vs `compile_canonical` over all suite formulations — the
//! per-compile cost the canonical form adds to the submission path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parking_lot::RwLock;
use restore_core::{MatchProbe, ReStore, ReStoreConfig, RepoStats, Repository};
use restore_dataflow::expr::Expr;
use restore_dataflow::physical::{PhysicalOp, PhysicalPlan};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_pigmix::paraphrase::paraphrase_suite;
use restore_pigmix::{datagen, DataScale};
use restore_telemetry::Registry;
use std::collections::HashSet;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Queries per thread per measured round.
const QUERIES_PER_THREAD: usize = 20;

/// A distinct Load→Filter→Project→Store plan per index.
fn entry_plan(i: usize) -> PhysicalPlan {
    let mut p = PhysicalPlan::new();
    let l = p.add(PhysicalOp::Load { path: format!("/data/t{}", i % 7) }, vec![]);
    let f = p.add(PhysicalOp::Filter { pred: Expr::col_eq(i % 5, i as i64) }, vec![l]);
    let pr = p.add(PhysicalOp::Project { cols: vec![0, (i % 3) + 1] }, vec![f]);
    p.add(PhysicalOp::Store { path: format!("/repo/{i}") }, vec![pr]);
    p
}

/// A query whose prefix matches exactly repository entry `i`.
fn query_plan(i: usize) -> PhysicalPlan {
    let mut p = entry_plan(i);
    let tip = p.stores()[0];
    let before = p.inputs(tip)[0];
    let g = p.add(PhysicalOp::Group { keys: vec![0] }, vec![before]);
    p.add(PhysicalOp::Store { path: "/out".into() }, vec![g]);
    p
}

/// Build an `n`-entry repository whose order equals insertion order
/// (decreasing reduction ratio and job time), so high-index queries are
/// the sequential scan's worst case.
fn repo_of(n: usize) -> Repository {
    let repo = Repository::new();
    repo.batch(|b| {
        for i in 0..n {
            b.insert(
                entry_plan(i),
                format!("/repo/{i}"),
                RepoStats {
                    input_bytes: 10 * n as u64 - i as u64,
                    output_bytes: 100,
                    job_time_s: (n - i) as f64,
                    ..Default::default()
                },
            );
        }
    });
    repo
}

/// The query mix of one thread: hits spread over the last quarter of
/// the repository (the scan's expensive region) plus one guaranteed
/// miss, cycled `QUERIES_PER_THREAD` times.
fn thread_queries(n: usize, t: usize) -> Vec<PhysicalPlan> {
    let mut qs = Vec::with_capacity(QUERIES_PER_THREAD);
    for k in 0..QUERIES_PER_THREAD {
        if k % 5 == 4 {
            // A miss: load path outside the repository's universe.
            let mut p = PhysicalPlan::new();
            let l = p.add(PhysicalOp::Load { path: "/data/miss".into() }, vec![]);
            let g = p.add(PhysicalOp::Group { keys: vec![0] }, vec![l]);
            p.add(PhysicalOp::Store { path: "/out".into() }, vec![g]);
            qs.push(p);
        } else {
            let back = (t * 13 + k * 7) % (n / 4).max(1);
            qs.push(query_plan(n - 1 - back));
        }
    }
    qs
}

fn sizes() -> Vec<usize> {
    match std::env::var("MATCHING_SIZES") {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => vec![100, 1_000, 10_000],
    }
}

fn bulk_sizes() -> Vec<usize> {
    match std::env::var("MATCHING_BULK_SIZES") {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => vec![100_000],
    }
}

fn shard_counts() -> Vec<usize> {
    match std::env::var("MATCHING_SHARDS") {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => vec![1, 8],
    }
}

/// Inserts per writer thread per measured round. Small enough that a
/// round stays in milliseconds, large enough that the O(len) ordering
/// scan inside each insert dominates the fixed per-insert overhead.
const INSERTS_PER_WRITER: usize = 64;

/// Write-path ablation: concurrent writers registering disjoint
/// corpora, repository striped `shards` ways. Each timed round builds
/// a fresh repository (construction is a handful of empty `Rcu`s —
/// noise next to the inserts) so every round performs identical work.
fn bench_insert_sharded(c: &mut Criterion) {
    for &shards in &shard_counts() {
        let mut group = c.benchmark_group(format!("insert_sharded/shards{shards}"));
        for &threads in &[1usize, 2, 4, 8] {
            let corpus: Vec<Vec<(PhysicalPlan, String, RepoStats)>> = (0..threads)
                .map(|t| {
                    (0..INSERTS_PER_WRITER)
                        .map(|k| {
                            let i = t * INSERTS_PER_WRITER + k;
                            (
                                entry_plan(i),
                                format!("/repo/{i}"),
                                RepoStats {
                                    input_bytes: 10_000 - i as u64,
                                    output_bytes: 100,
                                    job_time_s: (1_000 - i) as f64,
                                    ..Default::default()
                                },
                            )
                        })
                        .collect()
                })
                .collect();
            group.throughput(Throughput::Elements((threads * INSERTS_PER_WRITER) as u64));
            group.bench_with_input(
                BenchmarkId::new("writers", threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        let repo = Repository::with_shards(shards);
                        std::thread::scope(|scope| {
                            for slice in corpus.iter().take(threads) {
                                let repo = &repo;
                                scope.spawn(move || {
                                    for (p, path, s) in slice {
                                        black_box(repo.insert(p.clone(), path.clone(), s.clone()));
                                    }
                                });
                            }
                        });
                        assert_eq!(repo.len(), threads * INSERTS_PER_WRITER);
                        black_box(repo.publish_count())
                    });
                },
            );
        }
        group.finish();
    }
}

/// 10⁵-entry arm: bulk-loaded corpus, snapshot + inverted index only.
fn bench_matching_bulk(c: &mut Criterion) {
    for &n in &bulk_sizes() {
        let items: Vec<_> = (0..n)
            .map(|i| {
                (
                    entry_plan(i),
                    format!("/repo/{i}"),
                    RepoStats {
                        input_bytes: 10 * n as u64 - i as u64,
                        output_bytes: 100,
                        job_time_s: (n - i) as f64,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let repo = Repository::bulk_load(items);
        assert_eq!(repo.len(), n, "generated plans must be signature-distinct");
        let tick = std::sync::atomic::AtomicU64::new(1);
        let publishes_before = repo.publish_count();
        let mut group = c.benchmark_group(format!("matching_bulk_indexed/n{n}"));
        for &threads in &[1usize, 8] {
            group.throughput(Throughput::Elements((threads * QUERIES_PER_THREAD) as u64));
            let queries: Vec<Vec<PhysicalPlan>> =
                (0..threads).map(|t| thread_queries(n, t)).collect();
            group.bench_with_input(
                BenchmarkId::new("threads", threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        std::thread::scope(|scope| {
                            for qs in queries.iter().take(threads) {
                                let repo = &repo;
                                let tick = &tick;
                                scope.spawn(move || {
                                    let none = HashSet::new();
                                    for q in qs {
                                        let snap = repo.snapshot();
                                        let hit = black_box(
                                            snap.find_first_match_indexed(q, &none)
                                                .map(|(id, _)| id),
                                        );
                                        if let Some(id) = hit {
                                            let t = tick
                                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                            repo.note_use(id, t);
                                        }
                                    }
                                });
                            }
                        });
                    });
                },
            );
        }
        group.finish();
        assert_eq!(
            repo.publish_count(),
            publishes_before,
            "the bulk-loaded match path must be write-free"
        );
    }
}

fn bench_matching(c: &mut Criterion) {
    for &n in &sizes() {
        let repo = repo_of(n);
        let tick = std::sync::atomic::AtomicU64::new(1);

        // ---- locked_scan: RwLock-serialized sequential scan ----
        {
            let lock = RwLock::new(&repo);
            let mut group = c.benchmark_group(format!("matching_locked_scan/n{n}"));
            for &threads in &[1usize, 2, 4, 8] {
                group.throughput(Throughput::Elements((threads * QUERIES_PER_THREAD) as u64));
                let queries: Vec<Vec<PhysicalPlan>> =
                    (0..threads).map(|t| thread_queries(n, t)).collect();
                group.bench_with_input(
                    BenchmarkId::new("threads", threads),
                    &threads,
                    |b, &threads| {
                        b.iter(|| {
                            std::thread::scope(|scope| {
                                for qs in queries.iter().take(threads) {
                                    let lock = &lock;
                                    let tick = &tick;
                                    scope.spawn(move || {
                                        let none = HashSet::new();
                                        for q in qs {
                                            // Old read path: scan under the
                                            // repository-wide read guard.
                                            let hit = {
                                                let guard = lock.read();
                                                let snap = guard.snapshot();
                                                black_box(
                                                    snap.find_first_match_scan(q, &none)
                                                        .map(|(id, _)| id),
                                                )
                                            };
                                            // Old accounting: a write-guard
                                            // round-trip per hit.
                                            if let Some(id) = hit {
                                                let t = tick.fetch_add(
                                                    1,
                                                    std::sync::atomic::Ordering::Relaxed,
                                                );
                                                lock.write().note_use(id, t);
                                            }
                                        }
                                    });
                                }
                            });
                        });
                    },
                );
            }
            group.finish();
        }

        // ---- snapshot_indexed: RCU snapshot + inverted index ----
        {
            let publishes_before = repo.publish_count();
            let mut group = c.benchmark_group(format!("matching_snapshot_indexed/n{n}"));
            for &threads in &[1usize, 2, 4, 8] {
                group.throughput(Throughput::Elements((threads * QUERIES_PER_THREAD) as u64));
                let queries: Vec<Vec<PhysicalPlan>> =
                    (0..threads).map(|t| thread_queries(n, t)).collect();
                group.bench_with_input(
                    BenchmarkId::new("threads", threads),
                    &threads,
                    |b, &threads| {
                        b.iter(|| {
                            std::thread::scope(|scope| {
                                for qs in queries.iter().take(threads) {
                                    let repo = &repo;
                                    let tick = &tick;
                                    scope.spawn(move || {
                                        let none = HashSet::new();
                                        for q in qs {
                                            let snap = repo.snapshot();
                                            let hit = black_box(
                                                snap.find_first_match_indexed(q, &none)
                                                    .map(|(id, _)| id),
                                            );
                                            if let Some(id) = hit {
                                                let t = tick.fetch_add(
                                                    1,
                                                    std::sync::atomic::Ordering::Relaxed,
                                                );
                                                repo.note_use(id, t);
                                            }
                                        }
                                    });
                                }
                            });
                        });
                    },
                );
            }
            group.finish();
            // Zero write-side acquisitions on the match path: matching
            // and reuse accounting published no snapshot.
            assert_eq!(
                repo.publish_count(),
                publishes_before,
                "the snapshot match path must be write-free"
            );
        }
    }
}

/// Telemetry-overhead arm: the instrumented match path — the probed
/// matcher plus the counter/histogram recording the driver hot path
/// performs — against the bare indexed matcher, on the same bulk
/// corpus and query mix. Both variants run the same view machinery;
/// the delta is exactly the observation cost (one `MatchProbe`, two
/// `Instant` reads, and a handful of relaxed `fetch_add`s per query).
///
/// Beyond archiving both timings, the arm *asserts* the invariant the
/// telemetry crate promises: interleaved min-of-rounds, the
/// instrumented path stays within 5% of the bare one (plus a small
/// absolute epsilon so CI's tiny smoke corpora don't flake on timer
/// granularity).
fn bench_matching_telemetry_overhead(c: &mut Criterion) {
    let n = bulk_sizes().into_iter().min().unwrap_or(100_000);
    let items: Vec<_> = (0..n)
        .map(|i| {
            (
                entry_plan(i),
                format!("/repo/{i}"),
                RepoStats {
                    input_bytes: 10 * n as u64 - i as u64,
                    output_bytes: 100,
                    job_time_s: (n - i) as f64,
                    ..Default::default()
                },
            )
        })
        .collect();
    let repo = Repository::bulk_load(items);
    // Route both variants through the indexed strategy (the bulk arm's
    // path): without the flag the view falls back to sequential scan.
    repo.set_fingerprint_index(true);
    let view = repo.view();
    let queries = thread_queries(n, 0);

    let registry = Registry::new();
    let hits = registry.counter("bench_match_hits_total", "hits", &[]);
    let misses = registry.counter("bench_match_misses_total", "misses", &[]);
    let latency = registry.histogram("bench_match_seconds", "match latency", &[], 1e-9);
    let probe_h = registry.histogram("bench_probe_seconds", "index probe", &[], 1e-9);
    let winner_h = registry.histogram("bench_winner_seconds", "winner pass", &[], 1e-9);

    let none = HashSet::new();
    let round_plain = || {
        let mut found = 0u64;
        for q in &queries {
            if black_box(view.find_first_match_excluding(q, &none)).is_some() {
                found += 1;
            }
        }
        found
    };
    // Exactly the driver's per-match recording: one reused probe, stage
    // histograms fed from the probe's own timings (no extra clock
    // reads), hit/miss counters per query, and the loop-level latency
    // histogram once per round (the driver records it once per job).
    let round_telemetry = || {
        let t0 = Instant::now();
        let mut probe = MatchProbe::default();
        let mut found = 0u64;
        for q in &queries {
            probe.reset();
            let hit = black_box(view.find_first_match_probed(q, &none, &mut probe));
            probe_h.record(probe.probe_ns);
            winner_h.record(probe.winner_ns);
            if hit.is_some() {
                hits.inc();
                found += 1;
            } else {
                misses.inc();
            }
        }
        latency.record_elapsed(t0);
        found
    };

    let mut group = c.benchmark_group(format!("matching_bulk_telemetry/n{n}"));
    group.throughput(Throughput::Elements(QUERIES_PER_THREAD as u64));
    group.bench_function("off", |b| b.iter(round_plain));
    group.bench_function("on", |b| b.iter(round_telemetry));
    group.finish();

    // The <5% assertion: interleave the two variants so drift (thermal,
    // scheduler) hits both, and compare best-case rounds.
    for _ in 0..5 {
        black_box(round_plain());
        black_box(round_telemetry());
    }
    let mut plain_min = u64::MAX;
    let mut tele_min = u64::MAX;
    for _ in 0..40 {
        let t0 = Instant::now();
        black_box(round_plain());
        plain_min = plain_min.min(t0.elapsed().as_nanos() as u64);
        let t0 = Instant::now();
        black_box(round_telemetry());
        tele_min = tele_min.min(t0.elapsed().as_nanos() as u64);
    }
    assert!(
        tele_min <= plain_min + plain_min / 20 + 5_000,
        "telemetry overhead exceeds 5%: instrumented {tele_min}ns vs bare {plain_min}ns \
         per {QUERIES_PER_THREAD}-query round (n={n})"
    );
    assert_eq!(hits.get() + misses.get(), probe_h.count(), "every query recorded exactly once");
}

/// Analyzer ablation: the paraphrased-PigMix suite end-to-end, one
/// fresh session per round, `canonicalize` on vs off. Both arms pay
/// for the cold originals; the delta is the 13 paraphrase executions
/// the canonical form turns into repository hits. The arm *asserts*
/// the hit counts it claims (on: all paraphrases; off: none), so the
/// archived timings always describe the stated hit rates.
fn bench_paraphrase_reuse(c: &mut Criterion) {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 1024, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), 0xF00D).expect("data generation");
    let round = AtomicUsize::new(0);
    let mut group = c.benchmark_group("paraphrase_reuse");
    for (label, canonicalize) in [("analyzer_on", true), ("analyzer_off", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                // Fresh session (empty repository) per round; the shared
                // DFS is read-only input data, outputs are round-unique.
                let r = round.fetch_add(1, Ordering::Relaxed);
                let engine = Engine::new(
                    dfs.clone(),
                    ClusterConfig::default(),
                    EngineConfig { worker_threads: 2, default_reduce_tasks: 2 },
                );
                let restore =
                    ReStore::new(engine, ReStoreConfig { canonicalize, ..Default::default() });
                let mut hits = 0usize;
                let mut total = 0usize;
                for (ci, case) in paraphrase_suite(&format!("/out/pp/{r}")).iter().enumerate() {
                    restore
                        .execute_query(&case.original, &format!("/wf/pp/{r}/{ci}/o"))
                        .expect("original runs");
                    for (i, p) in case.paraphrases.iter().enumerate() {
                        let e = restore
                            .execute_query(p, &format!("/wf/pp/{r}/{ci}/p{i}"))
                            .expect("paraphrase runs");
                        total += 1;
                        hits += (e.jobs_skipped > 0) as usize;
                    }
                }
                assert_eq!(
                    hits,
                    if canonicalize { total } else { 0 },
                    "paraphrase hit count must match the analyzer mode"
                );
                black_box(hits)
            });
        });
    }
    group.finish();
}

/// The analyzer's own price: `compile` vs `compile_canonical` over
/// every formulation in the paraphrase suite — the added per-compile
/// cost of buying the reuse measured by `paraphrase_reuse`.
fn bench_canon_compile(c: &mut Criterion) {
    let queries: Vec<String> = paraphrase_suite("/out/cc")
        .into_iter()
        .flat_map(|case| std::iter::once(case.original).chain(case.paraphrases))
        .collect();
    let mut group = c.benchmark_group("canon_compile");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("plain", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(restore_dataflow::compile(q, "/wf").expect("compiles"));
            }
        });
    });
    group.bench_function("canonical", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(restore_dataflow::compile_canonical(q, "/wf").expect("compiles"));
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matching,
    bench_matching_bulk,
    bench_matching_telemetry_overhead,
    bench_insert_sharded,
    bench_paraphrase_reuse,
    bench_canon_compile
);
criterion_main!(benches);
