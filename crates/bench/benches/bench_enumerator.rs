//! Sub-job enumeration cost: Split+Store injection per heuristic, and
//! candidate prefix extraction, on plans of varying size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use restore_core::enumerator::{inject_subjob_stores, Heuristic};
use restore_dataflow::expr::Expr;
use restore_dataflow::physical::{PhysicalOp, PhysicalPlan};
use std::hint::black_box;

/// A join-of-pipelines plan with `depth` map-side operators per branch.
fn plan_of(depth: usize) -> PhysicalPlan {
    let mut p = PhysicalPlan::new();
    let mut branches = Vec::new();
    for b in 0..2 {
        let mut cur = p.add(PhysicalOp::Load { path: format!("/data/{b}") }, vec![]);
        for i in 0..depth {
            cur = if i % 2 == 0 {
                p.add(PhysicalOp::Project { cols: vec![0, 1] }, vec![cur])
            } else {
                p.add(PhysicalOp::Filter { pred: Expr::col_eq(0, i as i64) }, vec![cur])
            };
        }
        branches.push(cur);
    }
    let j = p.add(PhysicalOp::Join { keys: vec![vec![0], vec![0]] }, branches);
    p.add(PhysicalOp::Store { path: "/out".into() }, vec![j]);
    p
}

fn bench_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("subjob_injection");
    group.sample_size(50);
    for h in [Heuristic::Conservative, Heuristic::Aggressive, Heuristic::NoHeuristic] {
        for &depth in &[4usize, 16] {
            group.bench_with_input(BenchmarkId::new(h.label(), depth), &depth, |b, &depth| {
                b.iter(|| {
                    let mut plan = plan_of(depth);
                    let mut n = 0;
                    let cands = inject_subjob_stores(
                        &mut plan,
                        h,
                        || {
                            n += 1;
                            format!("/repo/c{n}")
                        },
                        |_| false,
                    );
                    black_box((plan, cands))
                })
            });
        }
    }
    group.finish();
}

fn bench_prefix_extraction(c: &mut Criterion) {
    let plan = plan_of(32);
    let mid = plan.ids().find(|&i| matches!(plan.op(i), PhysicalOp::Join { .. })).unwrap();
    c.bench_function("prefix_plan_join_tip_depth32", |b| {
        b.iter(|| black_box(plan.prefix_plan(black_box(mid), "/repo/x")));
    });
}

criterion_group!(benches, bench_injection, bench_prefix_extraction);
criterion_main!(benches);
