//! DFS micro-benchmarks: write path (block placement + replication),
//! read path (block fetch + range assembly), split planning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use restore_dfs::{Dfs, DfsConfig};
use std::hint::black_box;

fn cluster() -> Dfs {
    Dfs::new(DfsConfig { nodes: 14, block_size: 64 << 10, replication: 3, node_capacity: None })
}

fn bench_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfs_write");
    group.sample_size(20);
    for &kb in &[64usize, 1024] {
        let data = vec![0xabu8; kb << 10];
        group.throughput(Throughput::Bytes((kb << 10) as u64));
        group.bench_with_input(BenchmarkId::new("kb", kb), &kb, |b, _| {
            let dfs = cluster();
            let mut i = 0;
            b.iter(|| {
                i += 1;
                dfs.write_all(&format!("/w{i}"), black_box(&data)).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfs_read");
    group.sample_size(20);
    for &kb in &[64usize, 1024] {
        let dfs = cluster();
        dfs.write_all("/r", &vec![0xcdu8; kb << 10]).unwrap();
        group.throughput(Throughput::Bytes((kb << 10) as u64));
        group.bench_with_input(BenchmarkId::new("kb", kb), &kb, |b, _| {
            b.iter(|| black_box(dfs.read_all("/r").unwrap()));
        });
    }
    group.finish();
}

fn bench_splits(c: &mut Criterion) {
    let dfs = cluster();
    dfs.write_all("/s", &vec![1u8; 4 << 20]).unwrap(); // 64 blocks
    c.bench_function("dfs_split_planning_64_blocks", |b| {
        b.iter(|| black_box(dfs.splits("/s").unwrap()));
    });
}

criterion_group!(benches, bench_write, bench_read, bench_splits);
criterion_main!(benches);
