//! End-to-end wall-clock benchmark: PigMix L2 through the whole stack,
//! plain vs ReStore-warm. This measures *actual in-process* time (not
//! the modeled cluster time the experiment harness reports) — it shows
//! that the rewritten job is cheaper to execute even for the simulator,
//! since it reads and shuffles far fewer bytes.

use criterion::{criterion_group, criterion_main, Criterion};
use restore_core::{Heuristic, ReStore, ReStoreConfig};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_pigmix::{datagen, queries, DataScale};
use std::hint::black_box;

fn engine() -> Engine {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 8 << 10, replication: 1, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), 5).unwrap();
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 4, default_reduce_tasks: 4 },
    )
}

fn bench_plain_vs_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2_end_to_end");
    group.sample_size(10);

    group.bench_function("plain", |b| {
        let eng = engine();
        let rs = ReStore::new(eng, ReStoreConfig::baseline());
        let mut i = 0;
        b.iter(|| {
            i += 1;
            let q = queries::l2(&format!("/out/p{i}"));
            black_box(rs.execute_query(&q, &format!("/wf/p{i}")).unwrap())
        });
    });

    group.bench_function("restore_warm", |b| {
        let eng = engine();
        let rs = ReStore::new(
            eng,
            ReStoreConfig { heuristic: Heuristic::Aggressive, ..Default::default() },
        );
        // Warm the repository once.
        rs.execute_query(&queries::l2("/out/warm0"), "/wf/warm0").unwrap();
        let mut i = 0;
        b.iter(|| {
            i += 1;
            let q = queries::l2(&format!("/out/w{i}"));
            black_box(rs.execute_query(&q, &format!("/wf/w{i}")).unwrap())
        });
    });

    group.finish();
}

fn bench_compile_only(c: &mut Criterion) {
    // Query-compilation cost: parse → logical → optimize → physical → MR.
    let q = queries::l3("/out/x");
    c.bench_function("compile_l3", |b| {
        b.iter(|| black_box(restore_dataflow::compile(black_box(&q), "/wf").unwrap()));
    });
}

criterion_group!(benches, bench_plain_vs_reuse, bench_compile_only);
criterion_main!(benches);
