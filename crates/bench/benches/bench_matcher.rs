//! Plan-matching micro-benchmarks: the paper's sequential repository scan
//! vs the fingerprint-index ablation, across repository sizes.
//!
//! The paper scans the ordered repository linearly (§3); the index
//! pre-filters candidates by tip signature. Both return identical
//! matches (asserted in `repository::tests`); this bench quantifies the
//! lookup-cost difference that motivates the ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use restore_core::{RepoStats, Repository};
use restore_dataflow::expr::Expr;
use restore_dataflow::physical::{PhysicalOp, PhysicalPlan};
use std::hint::black_box;

/// A distinct Load→Filter→Project→Store plan per index.
fn entry_plan(i: usize) -> PhysicalPlan {
    let mut p = PhysicalPlan::new();
    let l = p.add(PhysicalOp::Load { path: format!("/data/t{}", i % 7) }, vec![]);
    let f = p.add(PhysicalOp::Filter { pred: Expr::col_eq(i % 5, i as i64) }, vec![l]);
    let pr = p.add(PhysicalOp::Project { cols: vec![0, (i % 3) + 1] }, vec![f]);
    p.add(PhysicalOp::Store { path: format!("/repo/{i}") }, vec![pr]);
    p
}

/// The query plan that matches exactly one repository entry.
fn query_plan(i: usize) -> PhysicalPlan {
    let mut p = entry_plan(i);
    let tip = p.stores()[0];
    let before = p.inputs(tip)[0];
    let g = p.add(PhysicalOp::Group { keys: vec![0] }, vec![before]);
    p.add(PhysicalOp::Store { path: "/out".into() }, vec![g]);
    p
}

fn repo_of(n: usize, indexed: bool) -> Repository {
    let repo = Repository::new();
    repo.set_fingerprint_index(indexed);
    for i in 0..n {
        repo.insert(
            entry_plan(i),
            format!("/repo/{i}"),
            RepoStats {
                input_bytes: 1000 + i as u64,
                output_bytes: 100,
                job_time_s: i as f64,
                ..Default::default()
            },
        );
    }
    repo
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("repository_match");
    group.sample_size(30);
    for &n in &[8usize, 64, 256] {
        let scan = repo_of(n, false);
        let indexed = repo_of(n, true);
        // Worst case for the scan: the matching entry is near the end.
        let query = query_plan(n - 1);
        group.bench_with_input(BenchmarkId::new("sequential_scan", n), &n, |b, _| {
            b.iter(|| black_box(scan.find_first_match(black_box(&query))))
        });
        group.bench_with_input(BenchmarkId::new("fingerprint_index", n), &n, |b, _| {
            b.iter(|| black_box(indexed.find_first_match(black_box(&query))))
        });
        // Miss case: nothing matches.
        let miss = {
            let mut p = PhysicalPlan::new();
            let l = p.add(PhysicalOp::Load { path: "/nowhere".into() }, vec![]);
            p.add(PhysicalOp::Store { path: "/o".into() }, vec![l]);
            p
        };
        group.bench_with_input(BenchmarkId::new("scan_miss", n), &n, |b, _| {
            b.iter(|| black_box(scan.find_first_match(black_box(&miss))))
        });
    }
    group.finish();
}

fn bench_traversal(c: &mut Criterion) {
    // Algorithm 1 on a deep plan: containment test cost by plan depth.
    let mut group = c.benchmark_group("pairwise_traversal");
    group.sample_size(30);
    for &depth in &[4usize, 16, 64] {
        let mut plan = PhysicalPlan::new();
        let mut cur = plan.add(PhysicalOp::Load { path: "/d".into() }, vec![]);
        for i in 0..depth {
            cur = plan.add(PhysicalOp::Filter { pred: Expr::col_eq(0, i as i64) }, vec![cur]);
        }
        plan.add(PhysicalOp::Store { path: "/o".into() }, vec![cur]);
        group.bench_with_input(BenchmarkId::new("self_match", depth), &depth, |b, _| {
            b.iter(|| {
                black_box(restore_core::matcher::pairwise_plan_traversal(
                    black_box(&plan),
                    black_box(&plan),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching, bench_traversal);
criterion_main!(benches);
