//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig17|table1|table2|all]
//!             [--quick]
//! ```
//!
//! `--quick` substitutes smaller data so everything finishes in seconds
//! (shapes hold, absolute numbers shrink). Times are *modeled* cluster
//! minutes from the calibrated cost model (see DESIGN.md §4); the paper's
//! reference values are printed alongside where they exist.

use restore_bench::env::{pigmix_env, synthetic_env, PigMixEnv, SyntheticEnv};
use restore_bench::figures::{
    filter_sweep, matcher_ablation, minutes, projection_sweep, subjob_sweep, table2_check,
    whole_job_sweep, SubJobRow, WholeJobRow,
};
use restore_bench::report::{fmin, fratio, mean, Table};
use restore_pigmix::DataScale;

struct Args {
    what: String,
    quick: bool,
}

fn parse_args() -> Args {
    let mut what = "all".to_string();
    let mut quick = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quick" => quick = true,
            other if !other.starts_with('-') => what = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    Args { what, quick }
}

fn scales(quick: bool) -> (DataScale, DataScale) {
    if quick {
        let mut small = DataScale::tiny();
        small.name = "15GB";
        let mut large = DataScale::tiny();
        large.name = "150GB";
        large.page_views_rows *= 10;
        large.paper_bytes = 10 * small.paper_bytes;
        (small, large)
    } else {
        (DataScale::gb15(), DataScale::gb150())
    }
}

fn synthetic_rows(quick: bool) -> usize {
    if quick {
        2_000
    } else {
        60_000
    }
}

/// Environments are built lazily and shared across the figures that need
/// them, because the sweeps are the expensive part.
struct Lazy {
    quick: bool,
    small: Option<PigMixEnv>,
    large: Option<PigMixEnv>,
    synth: Option<SyntheticEnv>,
    subjob_small: Option<Vec<SubJobRow>>,
    subjob_large: Option<Vec<SubJobRow>>,
    whole_large: Option<Vec<WholeJobRow>>,
}

impl Lazy {
    fn new(quick: bool) -> Self {
        Lazy {
            quick,
            small: None,
            large: None,
            synth: None,
            subjob_small: None,
            subjob_large: None,
            whole_large: None,
        }
    }

    fn large(&mut self) -> &PigMixEnv {
        if self.large.is_none() {
            let (_, l) = scales(self.quick);
            eprintln!("[setup] generating {} PigMix instance…", l.name);
            self.large = Some(pigmix_env(l));
        }
        self.large.as_ref().unwrap()
    }

    fn small(&mut self) -> &PigMixEnv {
        if self.small.is_none() {
            let (s, _) = scales(self.quick);
            eprintln!("[setup] generating {} PigMix instance…", s.name);
            self.small = Some(pigmix_env(s));
        }
        self.small.as_ref().unwrap()
    }

    fn synth(&mut self) -> &SyntheticEnv {
        if self.synth.is_none() {
            eprintln!("[setup] generating synthetic §7.5 data…");
            self.synth = Some(synthetic_env(synthetic_rows(self.quick)));
        }
        self.synth.as_ref().unwrap()
    }

    fn subjob_large(&mut self) -> &[SubJobRow] {
        if self.subjob_large.is_none() {
            self.large();
            eprintln!("[sweep] sub-job sweep at 150GB scale…");
            self.subjob_large = Some(subjob_sweep(self.large.as_ref().unwrap()));
        }
        self.subjob_large.as_ref().unwrap()
    }

    fn subjob_small(&mut self) -> &[SubJobRow] {
        if self.subjob_small.is_none() {
            self.small();
            eprintln!("[sweep] sub-job sweep at 15GB scale…");
            self.subjob_small = Some(subjob_sweep(self.small.as_ref().unwrap()));
        }
        self.subjob_small.as_ref().unwrap()
    }

    fn whole_large(&mut self) -> &[WholeJobRow] {
        if self.whole_large.is_none() {
            self.large();
            eprintln!("[sweep] whole-job sweep at 150GB scale…");
            self.whole_large = Some(whole_job_sweep(self.large.as_ref().unwrap()));
        }
        self.whole_large.as_ref().unwrap()
    }
}

fn fig9(lazy: &mut Lazy) {
    println!("\n== Figure 9: reusing whole job outputs (150GB) ==");
    println!("(paper: average speedup 9.8, overhead 0%)\n");
    let rows = lazy.whole_large().to_vec();
    let mut t = Table::new(&["Query", "No reuse (min)", "Reusing jobs (min)", "Speedup"]);
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            fmin(minutes(r.plain_s)),
            fmin(minutes(r.whole_s)),
            fratio(r.plain_s / r.whole_s),
        ]);
    }
    print!("{}", t.render());
    let avg = mean(rows.iter().map(|r| r.plain_s / r.whole_s));
    println!("\nAverage speedup: {avg:.1} (paper: 9.8)");
}

fn fig10(lazy: &mut Lazy) {
    println!("\n== Figure 10: reusing sub-job outputs, Aggressive heuristic (150GB) ==");
    println!("(paper: average speedup 24.4, average overhead 1.6)\n");
    let rows = lazy.subjob_large().to_vec();
    let mut t = Table::new(&[
        "Query",
        "No reuse (min)",
        "Generating sub-jobs (min)",
        "Reusing sub-jobs (min)",
    ]);
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            fmin(minutes(r.plain_s)),
            fmin(minutes(r.gen_s[1])),
            fmin(minutes(r.reuse_s[1])),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nAverage speedup: {:.1} (paper: 24.4); average overhead: {:.1} (paper: 1.6)",
        mean(rows.iter().map(|r| r.speedup(1))),
        mean(rows.iter().map(|r| r.overhead(1))),
    );
}

fn fig11(lazy: &mut Lazy) {
    println!("\n== Figure 11: overhead of generating sub-jobs (HA), 15GB vs 150GB ==");
    println!("(paper: average overhead 2.4 at 15GB, 1.6 at 150GB)\n");
    let small = lazy.subjob_small().to_vec();
    let large = lazy.subjob_large().to_vec();
    let mut t = Table::new(&["Query", "15GB", "150GB"]);
    for (s, l) in small.iter().zip(large.iter()) {
        t.row(vec![s.label.clone(), fratio(s.overhead(1)), fratio(l.overhead(1))]);
    }
    print!("{}", t.render());
    println!(
        "\nAverage overhead: {:.1} at 15GB (paper 2.4), {:.1} at 150GB (paper 1.6)",
        mean(small.iter().map(|r| r.overhead(1))),
        mean(large.iter().map(|r| r.overhead(1))),
    );
}

fn fig12(lazy: &mut Lazy) {
    println!("\n== Figure 12: speedup from reusing sub-jobs (HA), 15GB vs 150GB ==");
    println!("(paper: average speedup 3.0 at 15GB, 24.4 at 150GB)\n");
    let small = lazy.subjob_small().to_vec();
    let large = lazy.subjob_large().to_vec();
    let mut t = Table::new(&["Query", "15GB", "150GB"]);
    for (s, l) in small.iter().zip(large.iter()) {
        t.row(vec![s.label.clone(), fratio(s.speedup(1)), fratio(l.speedup(1))]);
    }
    print!("{}", t.render());
    println!(
        "\nAverage speedup: {:.1} at 15GB (paper 3.0), {:.1} at 150GB (paper 24.4)",
        mean(small.iter().map(|r| r.speedup(1))),
        mean(large.iter().map(|r| r.speedup(1))),
    );
}

fn fig13(lazy: &mut Lazy) {
    println!("\n== Figure 13: execution time reusing sub-jobs per heuristic (150GB) ==");
    println!("(paper: HA matches NH; HC gives less benefit)\n");
    let rows = lazy.subjob_large().to_vec();
    let mut t = Table::new(&[
        "Query",
        "No reuse (min)",
        "HC reuse (min)",
        "HA reuse (min)",
        "NH reuse (min)",
    ]);
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            fmin(minutes(r.plain_s)),
            fmin(minutes(r.reuse_s[0])),
            fmin(minutes(r.reuse_s[1])),
            fmin(minutes(r.reuse_s[2])),
        ]);
    }
    print!("{}", t.render());
}

fn fig14(lazy: &mut Lazy) {
    println!("\n== Figure 14: execution time with injected Stores per heuristic (150GB) ==");
    println!("(paper: NH most expensive; HA usually close to HC, much worse on L6)\n");
    let rows = lazy.subjob_large().to_vec();
    let mut t = Table::new(&[
        "Query",
        "No reuse (min)",
        "HC stores (min)",
        "HA stores (min)",
        "NH stores (min)",
    ]);
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            fmin(minutes(r.plain_s)),
            fmin(minutes(r.gen_s[0])),
            fmin(minutes(r.gen_s[1])),
            fmin(minutes(r.gen_s[2])),
        ]);
    }
    print!("{}", t.render());
}

fn table1(lazy: &mut Lazy) {
    println!("\n== Table 1: input size, bytes stored per heuristic, output size (150GB) ==");
    println!("(paper: HA close to HC and much less than NH; L6 the exception)\n");
    let rows = lazy.subjob_large().to_vec();
    let mut t = Table::new(&["Q", "I/P", "HC", "HA", "NH", "O/P"]);
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            restore_common::human_bytes(r.input_bytes),
            restore_common::human_bytes(r.stored_bytes[0]),
            restore_common::human_bytes(r.stored_bytes[1]),
            restore_common::human_bytes(r.stored_bytes[2]),
            restore_common::human_bytes(r.output_bytes),
        ]);
    }
    print!("{}", t.render());
}

fn fig15(lazy: &mut Lazy) {
    println!("\n== Figure 15: whole jobs vs sub-jobs (150GB) ==");
    println!("(paper: all reuse types help; whole jobs close to HA sub-jobs)\n");
    let rows = lazy.whole_large().to_vec();
    let mut t = Table::new(&[
        "Query",
        "No reuse (min)",
        "HC sub-jobs (min)",
        "HA sub-jobs (min)",
        "Whole jobs (min)",
    ]);
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            fmin(minutes(r.plain_s)),
            fmin(minutes(r.hc_s)),
            fmin(minutes(r.ha_s)),
            fmin(minutes(r.whole_s)),
        ]);
    }
    print!("{}", t.render());
}

fn table2(lazy: &mut Lazy) {
    println!("\n== Table 2: synthetic data set fields (spec vs generated) ==\n");
    let stats = table2_check(lazy.synth());
    let mut t = Table::new(&[
        "Field",
        "Cardinality (spec)",
        "Cardinality (measured)",
        "% selected (spec)",
        "% selected (measured)",
    ]);
    for s in stats {
        t.row(vec![
            format!("field{}", s.field),
            format!("{}", s.spec_cardinality),
            format!("{}", s.measured_cardinality),
            format!("{}%", s.spec_selected_pct),
            format!("{:.2}%", s.measured_selected_pct),
        ]);
    }
    print!("{}", t.render());
}

fn fig16(lazy: &mut Lazy) {
    println!("\n== Figure 16: overhead and speedup vs projected data fraction (QP) ==");
    println!("(paper: overhead rises and speedup falls as projection keeps more data)\n");
    let pts = projection_sweep(lazy.synth());
    let mut t = Table::new(&["Projected fields", "% of data", "Overhead", "Speedup"]);
    for (k, p) in pts.iter().enumerate() {
        t.row(vec![
            format!("{}", k + 1),
            format!("{:.0}%", p.pct_kept),
            format!("{:.2}", p.overhead()),
            format!("{:.2}", p.speedup()),
        ]);
    }
    print!("{}", t.render());
}

fn fig17(lazy: &mut Lazy) {
    println!("\n== Figure 17: overhead and speedup vs filtered data fraction (QF) ==");
    println!("(paper: overhead rises and speedup falls as the filter keeps more data)\n");
    let pts = filter_sweep(lazy.synth());
    let mut t = Table::new(&["Filter field", "% selected", "Overhead", "Speedup"]);
    for (i, p) in pts.iter().enumerate() {
        t.row(vec![
            format!("field{}", i + 6),
            format!("{:.1}%", p.pct_kept),
            format!("{:.2}", p.overhead()),
            format!("{:.2}", p.speedup()),
        ]);
    }
    print!("{}", t.render());
}

fn ablation(_lazy: &mut Lazy) {
    println!("\n== Ablation: repository lookup, sequential scan vs fingerprint index ==");
    println!("(both return identical matches; §3's scan is the paper's design)\n");
    let rows = matcher_ablation();
    let mut t = Table::new(&["Repo entries", "Scan (µs)", "Index (µs)", "Speedup", "Identical"]);
    for r in &rows {
        t.row(vec![
            format!("{}", r.repo_size),
            format!("{:.1}", r.scan_us),
            format!("{:.1}", r.index_us),
            format!("{:.1}x", r.scan_us / r.index_us.max(0.001)),
            format!("{}", r.agree),
        ]);
    }
    print!("{}", t.render());
}

fn main() {
    let args = parse_args();
    let mut lazy = Lazy::new(args.quick);
    let what = args.what.as_str();
    let all = what == "all";
    let mut ran = false;

    type Runner = fn(&mut Lazy);
    let runners: [(&str, Runner); 12] = [
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("table1", table1),
        ("fig14", fig14),
        ("fig15", fig15),
        ("table2", table2),
        ("fig16", fig16),
        ("fig17", fig17),
        ("ablation", ablation),
    ];
    for (name, f) in runners {
        if all || what == name {
            f(&mut lazy);
            ran = true;
        }
    }

    if !ran {
        eprintln!(
            "unknown experiment {what:?}; expected fig9..fig17, table1, table2, ablation, or all"
        );
        std::process::exit(2);
    }
}
