//! Fixed-width table rendering for the experiments binary.

/// A simple text table: header + rows, column widths auto-fitted.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                // Right-align numbers, left-align first column.
                if i == 0 {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format minutes with one decimal.
pub fn fmin(minutes: f64) -> String {
    format!("{minutes:.1}")
}

/// Format a ratio with one decimal.
pub fn fratio(r: f64) -> String {
    format!("{r:.1}")
}

/// Geometric-free plain average.
pub fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Query", "Time (min)"]);
        t.row(vec!["L2".into(), "15.7".into()]);
        t.row(vec!["L11".into(), "9.1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Query"));
        assert!(lines[2].starts_with("L2"));
        // All lines same width (aligned columns).
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn mean_and_formatting() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean([]), 0.0);
        assert_eq!(fmin(9.85), "9.8");
        assert_eq!(fratio(24.42), "24.4");
    }
}
