//! One runner per paper experiment. Each returns typed rows; the
//! `experiments` binary renders them and EXPERIMENTS.md records the
//! paper-vs-measured comparison.

use crate::env::{baseline_driver, paper_driver, PigMixEnv, SyntheticEnv};
use restore_core::{Heuristic, QueryExecution, ReStore};
use restore_pigmix::{queries, synthetic};

/// Seconds → minutes (the paper's plots are in minutes).
pub fn minutes(s: f64) -> f64 {
    s / 60.0
}

fn run(rs: &mut ReStore, query: &str, wf: &str) -> QueryExecution {
    rs.execute_query(query, wf).expect("experiment query failed")
}

/// Modeled bytes loaded from *base* tables by a query (Table 1's I/P).
fn base_input_bytes(env: &PigMixEnv, query: &str) -> u64 {
    let wf = restore_dataflow::compile(query, "/probe").expect("compile");
    let mut paths: Vec<String> = Vec::new();
    for job in &wf.jobs {
        for l in job.plan.loads() {
            if let restore_dataflow::physical::PhysicalOp::Load { path } = job.plan.op(l) {
                if path.starts_with("/data/") && !paths.contains(path) {
                    paths.push(path.clone());
                }
            }
        }
    }
    let actual: u64 = paths.iter().map(|p| env.engine.dfs().file_len(p).unwrap_or(0)).sum();
    (actual as f64 * env.byte_scale) as u64
}

// ---------------------------------------------------------------------
// Sub-job sweep: Figures 10–14 and Table 1 share these measurements.
// ---------------------------------------------------------------------

/// Per-query, per-heuristic measurements.
#[derive(Debug, Clone)]
pub struct SubJobRow {
    pub label: String,
    /// Modeled time without ReStore, seconds.
    pub plain_s: f64,
    /// Modeled time with Stores injected by each heuristic (HC, HA, NH).
    pub gen_s: [f64; 3],
    /// Modeled time when reusing the sub-jobs each heuristic stored.
    pub reuse_s: [f64; 3],
    /// Modeled bytes written by each heuristic's injected Stores.
    pub stored_bytes: [u64; 3],
    /// Modeled bytes loaded from base tables (Table 1 I/P).
    pub input_bytes: u64,
    /// Modeled bytes of the final query output (Table 1 O/P).
    pub output_bytes: u64,
}

pub const HEURISTICS: [Heuristic; 3] =
    [Heuristic::Conservative, Heuristic::Aggressive, Heuristic::NoHeuristic];

/// Run the full §7.2/§7.3 sweep over the standard workload at one scale.
pub fn subjob_sweep(env: &PigMixEnv) -> Vec<SubJobRow> {
    let mut rows = Vec::new();
    for (label, query) in queries::standard_workload("/out/std") {
        let input_bytes = base_input_bytes(env, &query);

        // Plain baseline.
        let mut base = baseline_driver(&env.engine);
        let plain = run(&mut base, &query, &format!("/wf/{label}-plain"));
        let plain_s = plain.total_s;
        let output_bytes = plain
            .job_results
            .iter()
            .find(|r| r.output == plain.final_output)
            .map(|r| (r.counters.output_bytes as f64 * env.byte_scale) as u64)
            .unwrap_or(0);

        let mut gen_s = [0.0; 3];
        let mut reuse_s = [0.0; 3];
        let mut stored_bytes = [0u64; 3];
        for (i, h) in HEURISTICS.into_iter().enumerate() {
            let tag = format!("{label}-{}", h.label());
            // Generation run: stores injected, nothing reused yet.
            let mut rs = paper_driver(&env.engine, h, false, &tag);
            let gen = run(&mut rs, &query, &format!("/wf/{tag}-gen"));
            gen_s[i] = gen.total_s;
            stored_bytes[i] = (gen.stored_candidate_bytes as f64 * env.byte_scale) as u64;
            // Reuse run: same repository, rewriting enabled.
            let mut cfg = rs.config().clone();
            cfg.reuse_enabled = true;
            rs.set_config(cfg);
            let reuse = run(&mut rs, &query, &format!("/wf/{tag}-reuse"));
            reuse_s[i] = reuse.total_s;
        }

        rows.push(SubJobRow {
            label,
            plain_s,
            gen_s,
            reuse_s,
            stored_bytes,
            input_bytes,
            output_bytes,
        });
    }
    rows
}

impl SubJobRow {
    /// Figure 11/16-style overhead for heuristic `i`.
    pub fn overhead(&self, i: usize) -> f64 {
        self.gen_s[i] / self.plain_s
    }

    /// Figure 12-style speedup for heuristic `i`.
    pub fn speedup(&self, i: usize) -> f64 {
        self.plain_s / self.reuse_s[i]
    }
}

// ---------------------------------------------------------------------
// Whole-job sweep: Figures 9 and 15.
// ---------------------------------------------------------------------

/// Per-variant measurements for the L3/L11 workload.
#[derive(Debug, Clone)]
pub struct WholeJobRow {
    pub label: String,
    pub plain_s: f64,
    /// Reusing sub-jobs stored by HC.
    pub hc_s: f64,
    /// Reusing sub-jobs stored by HA.
    pub ha_s: f64,
    /// Reusing whole (intermediate) jobs.
    pub whole_s: f64,
}

/// Run the §7.1/§7.4 whole-job workload at one scale.
pub fn whole_job_sweep(env: &PigMixEnv) -> Vec<WholeJobRow> {
    let mut rows = Vec::new();
    for (label, query) in queries::whole_job_workload("/out/whole") {
        let mut base = baseline_driver(&env.engine);
        let plain_s = run(&mut base, &query, &format!("/wf/w-{label}-plain")).total_s;

        let variant = |h: Heuristic, tag: &str| -> f64 {
            let tag = format!("w-{label}-{tag}");
            // Whole-job mode stores outputs through the reuse path itself
            // (heuristic None registers no sub-jobs), so enable reuse from
            // the start; the repository is empty on the first run.
            let mut rs = paper_driver(&env.engine, h, h == Heuristic::None, &tag);
            run(&mut rs, &query, &format!("/wf/{tag}-gen"));
            let mut cfg = rs.config().clone();
            cfg.reuse_enabled = true;
            rs.set_config(cfg);
            run(&mut rs, &query, &format!("/wf/{tag}-reuse")).total_s
        };

        let hc_s = variant(Heuristic::Conservative, "hc");
        let ha_s = variant(Heuristic::Aggressive, "ha");
        let whole_s = variant(Heuristic::None, "whole");

        rows.push(WholeJobRow { label, plain_s, hc_s, ha_s, whole_s });
    }
    rows
}

// ---------------------------------------------------------------------
// §7.5 data-reduction sweeps: Figures 16 and 17.
// ---------------------------------------------------------------------

/// One point of the QP/QF sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// X axis: percentage of data kept by the Project/Filter.
    pub pct_kept: f64,
    pub plain_s: f64,
    pub gen_s: f64,
    pub reuse_s: f64,
}

impl SweepPoint {
    pub fn overhead(&self) -> f64 {
        self.gen_s / self.plain_s
    }

    pub fn speedup(&self) -> f64 {
        self.plain_s / self.reuse_s
    }
}

/// Figure 16: vary the number of projected fields in template QP.
pub fn projection_sweep(env: &SyntheticEnv) -> Vec<SweepPoint> {
    let total = env.total_bytes as f64;
    (1..=5)
        .map(|k| {
            let query = synthetic::qp(k, &format!("/out/qp{k}"));
            let mut base = baseline_driver(&env.engine);
            let plain_s = run(&mut base, &query, &format!("/wf/qp{k}-plain")).total_s;
            let mut rs =
                paper_driver(&env.engine, Heuristic::Conservative, false, &format!("qp{k}"));
            let gen = run(&mut rs, &query, &format!("/wf/qp{k}-gen"));
            let mut cfg = rs.config().clone();
            cfg.reuse_enabled = true;
            rs.set_config(cfg);
            let reuse_s = run(&mut rs, &query, &format!("/wf/qp{k}-reuse")).total_s;
            let pct_kept = 100.0 * gen.stored_candidate_bytes as f64
                / (total * env.byte_scale / env.byte_scale);
            SweepPoint { pct_kept, plain_s, gen_s: gen.total_s, reuse_s }
        })
        .collect()
}

/// Figure 17: vary the filtered field in template QF (selectivities per
/// Table 2).
pub fn filter_sweep(env: &SyntheticEnv) -> Vec<SweepPoint> {
    synthetic::FILTER_FIELDS
        .iter()
        .map(|&(field, _card, pct)| {
            let query = synthetic::qf(field, &format!("/out/qf{field}"));
            let mut base = baseline_driver(&env.engine);
            let plain_s = run(&mut base, &query, &format!("/wf/qf{field}-plain")).total_s;
            let mut rs =
                paper_driver(&env.engine, Heuristic::Conservative, false, &format!("qf{field}"));
            let gen = run(&mut rs, &query, &format!("/wf/qf{field}-gen"));
            let mut cfg = rs.config().clone();
            cfg.reuse_enabled = true;
            rs.set_config(cfg);
            let reuse_s = run(&mut rs, &query, &format!("/wf/qf{field}-reuse")).total_s;
            SweepPoint { pct_kept: pct * 100.0, plain_s, gen_s: gen.total_s, reuse_s }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Matcher ablation: sequential scan vs fingerprint index.
// ---------------------------------------------------------------------

/// One row of the matcher ablation.
#[derive(Debug, Clone)]
pub struct AblationRow {
    pub repo_size: usize,
    /// Mean lookup time of the paper's sequential scan, microseconds.
    pub scan_us: f64,
    /// Mean lookup time with the fingerprint index, microseconds.
    pub index_us: f64,
    /// Both strategies found the same entry.
    pub agree: bool,
}

/// Wall-clock ablation of repository lookup strategies (DESIGN.md §3).
/// Both strategies return identical matches; the index prunes candidates
/// by tip signature before running the full traversal.
pub fn matcher_ablation() -> Vec<AblationRow> {
    use restore_core::{RepoStats, Repository};
    use restore_dataflow::expr::Expr;
    use restore_dataflow::physical::{PhysicalOp, PhysicalPlan};
    use std::time::Instant;

    fn entry_plan(i: usize) -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let l = p.add(PhysicalOp::Load { path: format!("/data/t{}", i % 7) }, vec![]);
        let f = p.add(PhysicalOp::Filter { pred: Expr::col_eq(i % 5, i as i64) }, vec![l]);
        let pr = p.add(PhysicalOp::Project { cols: vec![0, (i % 3) + 1] }, vec![f]);
        p.add(PhysicalOp::Store { path: format!("/repo/{i}") }, vec![pr]);
        p
    }

    fn query_plan(i: usize) -> PhysicalPlan {
        let mut p = entry_plan(i);
        let tip = p.stores()[0];
        let before = p.inputs(tip)[0];
        let g = p.add(PhysicalOp::Group { keys: vec![0] }, vec![before]);
        p.add(PhysicalOp::Store { path: "/out".into() }, vec![g]);
        p
    }

    let mut rows = Vec::new();
    for &n in &[8usize, 32, 128, 512] {
        let scan = Repository::new();
        let indexed = Repository::new();
        indexed.set_fingerprint_index(true);
        for i in 0..n {
            // Decreasing reduction ratio and job time with i, so entry
            // n-1 sorts *last* — the scan's worst case.
            let stats = RepoStats {
                input_bytes: 100_000 - i as u64 * 10,
                output_bytes: 100,
                job_time_s: (n - i) as f64,
                ..Default::default()
            };
            scan.insert(entry_plan(i), format!("/r/{i}"), stats.clone());
            indexed.insert(entry_plan(i), format!("/r/{i}"), stats);
        }
        // Worst case for the scan: the matching entry sits at the end.
        let query = query_plan(n - 1);
        let reps = 200;
        let t0 = Instant::now();
        let mut scan_hit = None;
        for _ in 0..reps {
            scan_hit = scan.find_first_match(&query).map(|(id, _)| id);
        }
        let scan_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let t1 = Instant::now();
        let mut index_hit = None;
        for _ in 0..reps {
            index_hit = indexed.find_first_match(&query).map(|(id, _)| id);
        }
        let index_us = t1.elapsed().as_secs_f64() * 1e6 / reps as f64;
        rows.push(AblationRow {
            repo_size: n,
            scan_us,
            index_us,
            agree: scan_hit.is_some() && scan_hit == index_hit,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Table 2 verification.
// ---------------------------------------------------------------------

/// Measured field statistics of the generated synthetic data set.
#[derive(Debug, Clone)]
pub struct FieldStat {
    pub field: usize,
    pub spec_cardinality: f64,
    pub measured_cardinality: usize,
    pub spec_selected_pct: f64,
    pub measured_selected_pct: f64,
}

/// Verify the generated data against Table 2.
pub fn table2_check(env: &SyntheticEnv) -> Vec<FieldStat> {
    let bytes = env.engine.dfs().read_all(synthetic::SYNTH).expect("synthetic data");
    let rows = restore_common::codec::decode_all(&bytes).expect("decode");
    synthetic::FILTER_FIELDS
        .iter()
        .map(|&(field, card, pct)| {
            let mut vals: Vec<i64> =
                rows.iter().filter_map(|t| t.get(field - 1).as_i64()).collect();
            let hits = vals.iter().filter(|&&v| v == 0).count();
            let measured_selected_pct = 100.0 * hits as f64 / rows.len() as f64;
            vals.sort_unstable();
            vals.dedup();
            FieldStat {
                field,
                spec_cardinality: card,
                measured_cardinality: vals.len(),
                spec_selected_pct: pct * 100.0,
                measured_selected_pct,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{pigmix_env, synthetic_env};
    use restore_pigmix::DataScale;

    /// One smoke test runs a miniature version of every sweep; the real
    /// scales run in the experiments binary.
    #[test]
    fn sweeps_run_at_tiny_scale() {
        let env = pigmix_env(DataScale::tiny());

        let rows = subjob_sweep(&env);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.plain_s > 0.0, "{}", r.label);
            for i in 0..3 {
                assert!(r.gen_s[i] >= r.plain_s * 0.9, "{} gen < plain", r.label);
                assert!(r.reuse_s[i] > 0.0, "{}", r.label);
                // Reuse must always beat the store-injected run; beating
                // the plain run requires multiple map waves, which the
                // tiny test scale does not have (the paper's 15 GB-vs-
                // 150 GB observation), so allow a small margin here.
                assert!(
                    r.reuse_s[i] < r.gen_s[i],
                    "{} reuse ({}) not faster than generation ({})",
                    r.label,
                    r.reuse_s[i],
                    r.gen_s[i]
                );
                assert!(
                    r.reuse_s[i] <= r.plain_s * 1.35,
                    "{} reuse ({}) far above plain ({})",
                    r.label,
                    r.reuse_s[i],
                    r.plain_s
                );
            }
            // NH stores at least as much as HA, which stores >= HC.
            assert!(r.stored_bytes[2] >= r.stored_bytes[1]);
            assert!(r.stored_bytes[1] >= r.stored_bytes[0]);
            assert!(r.input_bytes > 0);
        }

        let whole = whole_job_sweep(&env);
        assert_eq!(whole.len(), 9);
        for r in &whole {
            // Multi-job workflows always shrink: the reused intermediate
            // job disappears entirely (its startup cost alone wins even
            // at tiny scale, where single-wave map phases hide sub-job
            // benefits).
            assert!(
                r.whole_s < r.plain_s * 0.95,
                "{} whole-job reuse must win ({} vs {})",
                r.label,
                r.whole_s,
                r.plain_s
            );
            assert!(r.ha_s <= r.plain_s * 1.05, "{}", r.label);
        }

        let syn = synthetic_env(400);
        let qp = projection_sweep(&syn);
        assert_eq!(qp.len(), 5);
        // More projected fields → more stored bytes → higher overhead.
        assert!(qp[4].pct_kept > qp[0].pct_kept);
        let qf = filter_sweep(&syn);
        assert_eq!(qf.len(), 7);
        for p in qf.iter().chain(qp.iter()) {
            // Tiny scale: single-wave maps mute (even invert) the benefit;
            // reuse must still beat the store-injected run, and overhead
            // is real. The monotone paper shapes are asserted at real
            // scale by the experiments binary.
            assert!(p.reuse_s < p.gen_s);
            assert!(p.speedup() > 0.5, "speedup {}", p.speedup());
            assert!(p.overhead() >= 1.0);
        }

        let t2 = table2_check(&syn);
        assert_eq!(t2.len(), 7);
    }

    #[test]
    fn ablation_strategies_agree() {
        for row in matcher_ablation() {
            assert!(row.agree, "strategies disagree at {} entries", row.repo_size);
            assert!(row.scan_us > 0.0 && row.index_us > 0.0);
        }
    }
}
