//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§7).
//!
//! * [`env`] — builds the scaled-down PigMix / synthetic environments
//!   with a cost model parameterized like the paper's 15-node cluster;
//! * [`figures`] — one runner per experiment (Figures 9–17, Tables 1–2),
//!   each returning typed rows;
//! * [`report`] — fixed-width table rendering for the harness binary.
//!
//! Run `cargo run -p restore-bench --release --bin experiments -- all`
//! to regenerate everything; see EXPERIMENTS.md for paper-vs-measured.

pub mod env;
pub mod figures;
pub mod report;
