//! Experiment environments: DFS + generated data + calibrated engine.

use restore_core::{Heuristic, ReStore, ReStoreConfig};
use restore_dfs::{Dfs, DfsConfig};
use restore_mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_pigmix::datagen::{self, PigMixData};
use restore_pigmix::synthetic;
use restore_pigmix::DataScale;

/// A ready-to-run PigMix environment at one scale.
pub struct PigMixEnv {
    pub scale: DataScale,
    pub data: PigMixData,
    pub engine: Engine,
    /// Multiplier from actual bytes to paper-equivalent bytes.
    pub byte_scale: f64,
}

/// Deterministic seed used by all experiments.
pub const SEED: u64 = 0x5E_57_0E;

/// Build a PigMix environment: generate once to learn the data volume,
/// then rebuild the DFS with a block size giving the paper's split count
/// and a cost model scaled to the paper's data volume.
pub fn pigmix_env(scale: DataScale) -> PigMixEnv {
    // Probe pass: measure generated size.
    let probe =
        Dfs::new(DfsConfig { nodes: 14, block_size: 8 << 20, replication: 1, node_capacity: None });
    let probe_data = datagen::generate(&probe, &scale, SEED).expect("probe generation");
    let pv_bytes = probe_data.page_views_bytes;

    // Real pass.
    let dfs = Dfs::new(DfsConfig {
        nodes: 14,
        block_size: scale.block_size(pv_bytes),
        replication: 3,
        node_capacity: None,
    });
    let data = datagen::generate(&dfs, &scale, SEED).expect("data generation");
    let byte_scale = scale.byte_scale(data.page_views_bytes);
    let engine =
        Engine::new(dfs, ClusterConfig::paper_testbed(byte_scale), EngineConfig::default());
    PigMixEnv { scale, data, engine, byte_scale }
}

/// A synthetic (§7.5) environment.
pub struct SyntheticEnv {
    pub engine: Engine,
    pub byte_scale: f64,
    pub total_bytes: u64,
}

/// Build the §7.5 synthetic environment: `rows` scaled-down rows standing
/// in for the paper's 200M-row / 40 GB file.
pub fn synthetic_env(rows: usize) -> SyntheticEnv {
    let paper_bytes = 40u64 << 30;
    let probe =
        Dfs::new(DfsConfig { nodes: 14, block_size: 8 << 20, replication: 1, node_capacity: None });
    let actual = synthetic::generate(&probe, rows, SEED).expect("probe generation");
    let byte_scale = paper_bytes as f64 / actual.max(1) as f64;
    let block = ((64u64 << 20) as f64 / byte_scale) as u64;

    let dfs = Dfs::new(DfsConfig {
        nodes: 14,
        block_size: block.clamp(4 << 10, 64 << 20),
        replication: 3,
        node_capacity: None,
    });
    let total_bytes = synthetic::generate(&dfs, rows, SEED).expect("generation");
    let engine =
        Engine::new(dfs, ClusterConfig::paper_testbed(byte_scale), EngineConfig::default());
    SyntheticEnv { engine, byte_scale, total_bytes }
}

/// Fresh ReStore driver in "paper experiment" mode on a shared engine:
/// empty repository, final outputs not registered (the §7 experiments
/// reuse intermediate jobs and sub-jobs only), unique repo prefix so
/// concurrent modes don't collide in the DFS.
pub fn paper_driver(engine: &Engine, heuristic: Heuristic, reuse: bool, tag: &str) -> ReStore {
    ReStore::new(
        engine.clone(),
        ReStoreConfig {
            reuse_enabled: reuse,
            heuristic,
            repo_prefix: format!("/restore/{tag}"),
            register_final_outputs: false,
            delete_tmp: false,
            ..Default::default()
        },
    )
}

/// Fresh plain-Pig baseline driver.
pub fn baseline_driver(engine: &Engine) -> ReStore {
    ReStore::new(engine.clone(), ReStoreConfig::baseline())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_env_builds_and_scales() {
        let env = pigmix_env(DataScale::tiny());
        assert!(env.byte_scale > 1.0);
        assert!(env.engine.dfs().exists(datagen::PAGE_VIEWS));
        // Block size chosen so the paper's split count is approximated.
        let splits = env.engine.dfs().splits(datagen::PAGE_VIEWS).unwrap().len();
        assert!(splits >= 1);
    }

    #[test]
    fn synthetic_env_builds() {
        let env = synthetic_env(200);
        assert!(env.engine.dfs().exists(synthetic::SYNTH));
        assert!(env.total_bytes > 0);
    }
}
