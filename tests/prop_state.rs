//! Property: `save_state` → `load_state` → `save_state` round-trips
//! **byte-identically** for arbitrary multi-tenant repository and
//! provenance states — in the current v2 wire format and in the legacy
//! v1 format (`save_state_v1`).

use proptest::prelude::*;
use restore_suite::core::{Heuristic, ReStore, ReStoreConfig, RepoStats, SelectionPolicy};
use restore_suite::dataflow::physical::{PhysicalOp, PhysicalPlan};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};

/// One synthetic repository entry: which base input it loads, which
/// columns it projects, and its statistics.
#[derive(Debug, Clone)]
struct EntrySpec {
    input: u8,
    cols: Vec<usize>,
    in_bytes: u64,
    out_bytes: u64,
    time_ds: u32,
    uses: u64,
    register_provenance: bool,
}

/// One synthetic tenant namespace: its entries and an optional policy
/// override.
#[derive(Debug, Clone)]
struct SpaceSpec {
    entries: Vec<EntrySpec>,
    override_config: Option<(usize, Option<u64>)>,
}

fn entry_spec() -> impl Strategy<Value = EntrySpec> {
    (
        0u8..4,
        prop::sample::subsequence(vec![0usize, 1, 2], 1..=3),
        1u64..100_000,
        1u64..100_000,
        0u32..5000,
        0u64..9,
        any::<bool>(),
    )
        .prop_map(|(input, cols, in_bytes, out_bytes, time_ds, uses, register_provenance)| {
            EntrySpec { input, cols, in_bytes, out_bytes, time_ds, uses, register_provenance }
        })
}

fn space_spec() -> impl Strategy<Value = SpaceSpec> {
    (
        prop::collection::vec(entry_spec(), 0..5),
        prop::option::of((0usize..4, prop::option::of(1u64..100))),
    )
        .prop_map(|(entries, override_config)| SpaceSpec { entries, override_config })
}

fn heuristics() -> [Heuristic; 4] {
    [Heuristic::None, Heuristic::Conservative, Heuristic::Aggressive, Heuristic::NoHeuristic]
}

/// `slug` keys the DFS paths (kept path-safe even when the tenant name
/// itself contains spaces or quotes).
fn plan_for(slug: &str, idx: usize, spec: &EntrySpec) -> (PhysicalPlan, String) {
    let out_path = format!("/r/{slug}/o{idx}");
    let mut p = PhysicalPlan::new();
    let l = p.add(PhysicalOp::Load { path: format!("/data/p{}", spec.input) }, vec![]);
    let pr = p.add(PhysicalOp::Project { cols: spec.cols.clone() }, vec![l]);
    p.add(PhysicalOp::Store { path: out_path.clone() }, vec![pr]);
    (p, out_path)
}

/// Materialize a synthetic multi-tenant session: every referenced path
/// is written to the DFS (snapshots exclude paths with no file behind
/// them), repositories and provenance tables are populated through the
/// public admin APIs, and tenant overrides are installed.
fn build_session(dfs: &Dfs, spaces: &[(Option<&str>, &SpaceSpec)]) -> ReStore {
    let engine = Engine::new(
        dfs.clone(),
        ClusterConfig::default(),
        EngineConfig { worker_threads: 1, default_reduce_tasks: 2 },
    );
    let rs = ReStore::new(engine, ReStoreConfig::default());
    for (ns, (tenant, spec)) in spaces.iter().enumerate() {
        let slug = format!("s{ns}");
        if let Some((h, window)) = &spec.override_config {
            if tenant.is_some() {
                rs.set_config_as(
                    *tenant,
                    ReStoreConfig {
                        heuristic: heuristics()[*h],
                        selection: SelectionPolicy {
                            eviction_window: *window,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                );
            }
        }
        for (i, e) in spec.entries.iter().enumerate() {
            let (plan, out_path) = plan_for(&slug, i, e);
            let input_path = format!("/data/p{}", e.input);
            if !dfs.exists(&input_path) {
                dfs.write_all(&input_path, b"a\t1\nb\t2\n").unwrap();
            }
            if !dfs.exists(&out_path) {
                dfs.write_all(&out_path, b"x\t1\n").unwrap();
            }
            let stats = RepoStats {
                input_bytes: e.in_bytes,
                output_bytes: e.out_bytes,
                job_time_s: e.time_ds as f64 / 10.0,
                avg_map_time_s: e.time_ds as f64 / 40.0,
                avg_reduce_time_s: e.time_ds as f64 / 80.0,
                use_count: e.uses,
                last_used: e.uses,
                created: 1,
                input_files: vec![(input_path, 0)],
            };
            rs.with_repository_mut_as(*tenant, |repo| repo.insert(plan.clone(), &out_path, stats));
            if e.register_provenance {
                rs.with_provenance_mut_as(*tenant, |prov| {
                    if !prov.contains(&out_path) {
                        prov.register(&out_path, plan.clone());
                    }
                });
            }
        }
    }
    rs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// v2: arbitrary multi-tenant states round-trip byte-identically,
    /// and a second generation reproduces the same bytes again.
    #[test]
    fn v2_round_trip_is_byte_identical(
        default_space in space_spec(),
        ana in space_spec(),
        bo in space_spec(),
        with_ana in any::<bool>(),
        with_bo in any::<bool>(),
    ) {
        let dfs = Dfs::new(DfsConfig::small_for_tests());
        let mut spaces: Vec<(Option<&str>, &SpaceSpec)> = vec![(None, &default_space)];
        if with_ana {
            spaces.push((Some("ana"), &ana));
        }
        if with_bo {
            spaces.push((Some("bo w.\"q\""), &bo));
        }
        let rs = build_session(&dfs, &spaces);

        let s1 = rs.save_state();
        let engine = Engine::new(dfs.clone(), ClusterConfig::default(), EngineConfig::default());
        let resumed = ReStore::new(engine, ReStoreConfig::default());
        resumed.load_state(&s1).unwrap();
        let s2 = resumed.save_state();
        prop_assert_eq!(&s1, &s2, "save -> load -> save must be byte-identical");

        let engine = Engine::new(dfs.clone(), ClusterConfig::default(), EngineConfig::default());
        let third = ReStore::new(engine, ReStoreConfig::default());
        third.load_state(&s2).unwrap();
        prop_assert_eq!(third.save_state(), s2);
    }

    /// v1: the legacy single-namespace format round-trips through
    /// `load_state` and the legacy writer byte-identically.
    #[test]
    fn v1_round_trip_is_byte_identical(default_space in space_spec()) {
        let dfs = Dfs::new(DfsConfig::small_for_tests());
        let rs = build_session(&dfs, &[(None, &default_space)]);

        let v1 = rs.save_state_v1();
        prop_assert!(v1.starts_with("restore-state v1\n"));
        let engine = Engine::new(dfs.clone(), ClusterConfig::default(), EngineConfig::default());
        let resumed = ReStore::new(engine, ReStoreConfig::default());
        resumed.load_state(&v1).unwrap();
        prop_assert_eq!(resumed.save_state_v1(), v1);

        // Loading a v1 document and re-saving in v2 keeps the same
        // default-namespace content (counted, not byte-compared: the
        // wire formats differ).
        let before = rs.stats();
        prop_assert_eq!(before, resumed.stats());
    }
}
