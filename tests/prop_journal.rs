//! Property: truncating the snapshot journal at **any byte offset**
//! recovers to a state byte-identical to some prefix of committed
//! records — a torn tail is tolerated and truncated, never corrupting
//! recovery. This is the crash model: a process dying mid-append can
//! only shorten the segment being written.

use proptest::prelude::*;
use restore_suite::common::Error;
use restore_suite::core::journal::segment_boundaries;
use restore_suite::core::{JournalConfig, ReStore, ReStoreConfig};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};
use std::sync::OnceLock;

fn engine_over(dfs: Dfs) -> Engine {
    Engine::new(dfs, ClusterConfig::default(), EngineConfig::default())
}

fn sum_query(out: &str) -> String {
    format!(
        "A = load '/data/pv' as (user, n:int);
         G = group A by user;
         R = foreach G generate group, SUM(A.n);
         store R into '{out}';"
    )
}

fn join_query(out: &str) -> String {
    format!(
        "A = load '/data/pv' as (user, revenue:int);
         B = load '/data/users' as (name, city);
         C = join B by name, A by user;
         D = group C by $0;
         E = foreach D generate group, SUM(C.revenue);
         store E into '{out}';"
    )
}

/// One journaled workload, built once: the shared DFS, the base
/// checkpoint, the earlier (intact) segments, the final segment the
/// property truncates, its record boundaries, and the expected
/// recovered state per boundary prefix.
struct Scenario {
    dfs: Dfs,
    base: String,
    prior: Vec<String>,
    last: String,
    boundaries: Vec<usize>,
    expected: Vec<String>,
}

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| {
        let dfs = Dfs::new(DfsConfig::small_for_tests());
        dfs.write_all("/data/pv", b"alice\t4\nbob\t7\nalice\t1\ncarol\t9\n").unwrap();
        dfs.write_all("/data/users", b"alice\tkitchener\nbob\ttoronto\n").unwrap();

        let live = ReStore::new(engine_over(dfs.clone()), ReStoreConfig::default());
        live.enable_journal(JournalConfig::default());
        let base = live.save_state();

        // Earlier history, sealed into intact segments.
        live.execute_query(&sum_query("/out/a"), "/wf/a").unwrap();
        let prior = live.save_state_delta().unwrap();

        // The final segment mixes record types: registrations in two
        // namespaces, a warm hit (note-use), config changes, counters,
        // and dead-letter traffic.
        live.execute_query_as(Some("ana"), &join_query("/out/j"), "/wf/j").unwrap();
        let warm = live.execute_query(&sum_query("/out/a2"), "/wf/a2").unwrap();
        assert_eq!(warm.jobs_skipped, 1);
        live.set_config_as(
            Some("ana"),
            ReStoreConfig { register_final_outputs: false, ..Default::default() },
        );
        // Dead-letter puts in two namespaces plus an ack, so truncation
        // coverage includes `dlq-put`/`dlq-ack` records: a cut between
        // them must recover exactly the committed-prefix queue.
        let parked = restore_suite::dataflow::compile(&sum_query("/out/dead"), "/wf/dead").unwrap();
        live.dlq_put_as(Some("ana"), parked.clone(), "engine: node 3 failed", 2);
        let acked = live.dlq_put_as(None, parked.clone(), "boom", 1);
        live.dlq_put_as(None, parked, "still failing\nafter retries", 3);
        live.dlq_ack_as(None, &[acked.id]);
        let mut tail = live.save_state_delta().unwrap();
        assert_eq!(tail.len(), 1, "tail workload must fit one segment");
        let last = tail.pop().unwrap();

        let boundaries = segment_boundaries(&last);
        assert!(boundaries.len() > 3, "need several records to truncate between");

        // Reference state per clean prefix of the final segment.
        let expected = boundaries
            .iter()
            .map(|&b| {
                let mut segments = prior.clone();
                segments.push(last[..b].to_string());
                let rs = ReStore::new(engine_over(dfs.clone()), ReStoreConfig::default());
                rs.recover(&base, &segments).unwrap();
                rs.save_state()
            })
            .collect();
        Scenario { dfs, base, prior, last, boundaries, expected }
    })
}

/// Recovering from a base and **no segments at all** is the
/// degenerate-but-legal cold path: nothing to replay, no torn tail,
/// and the session equals a plain `load_state` of the base.
#[test]
fn recovery_with_no_segments_is_the_base() {
    let s = scenario();
    let rs = ReStore::new(engine_over(s.dfs.clone()), ReStoreConfig::default());
    let report = rs.recover(&s.base, &[]).unwrap();
    assert_eq!(report.records_applied, 0);
    assert_eq!(report.records_skipped, 0);
    assert!(report.torn_tail.is_none());
    let fresh = ReStore::new(engine_over(s.dfs.clone()), ReStoreConfig::default());
    fresh.load_state(&s.base).unwrap();
    assert_eq!(rs.save_state(), fresh.save_state());
}

/// Degenerate segment bodies a crashed or buggy checkpoint store could
/// hand back: empty, whitespace-only, prefixes of the segment header,
/// a header followed by a torn or over-long frame, arbitrary printable
/// junk.
fn degenerate_segment() -> impl Strategy<Value = String> {
    let header = "restore-journal v1";
    prop_oneof![
        Just(String::new()),
        "[ \t\n]{1,8}",
        (0..header.len() + 2).prop_map(move |n| format!("{header}\n")[..n].to_string()),
        Just(format!("{header}\nr 7 12")),
        Just(format!("{header}\nr 7 9999 0123456789abcdef\ntorn payload")),
        "[ -~]{0,32}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncate the final segment at an arbitrary fraction of its
    /// length: recovery must succeed, report a torn tail exactly when
    /// the cut is mid-record, and land byte-identically on the state
    /// of the largest committed prefix at or below the cut.
    #[test]
    fn truncation_at_any_offset_recovers_a_committed_prefix(frac in 0.0f64..1.0) {
        let s = scenario();
        let cut = ((s.last.len() as f64) * frac) as usize;
        let mut segments = s.prior.clone();
        segments.push(s.last[..cut].to_string());

        let rs = ReStore::new(engine_over(s.dfs.clone()), ReStoreConfig::default());
        let report = rs.recover(&s.base, &segments).unwrap();

        // Largest committed prefix at or below the cut (cut below the
        // segment header = zero records, like boundary 0).
        let idx = s.boundaries.iter().filter(|&&b| b <= cut).count().saturating_sub(1);
        prop_assert_eq!(&rs.save_state(), &s.expected[idx], "cut at byte {}", cut);

        let at_boundary = s.boundaries.contains(&cut) || cut == s.last.len();
        prop_assert_eq!(report.torn_tail.is_none(), at_boundary, "cut at byte {}", cut);
    }

    /// Cutting exactly at each record boundary is the clean-shutdown
    /// case: no torn tail and the exact prefix state.
    #[test]
    fn truncation_at_each_boundary_is_clean(idx in 0usize..64) {
        let s = scenario();
        let idx = idx % s.boundaries.len();
        let cut = s.boundaries[idx];
        let mut segments = s.prior.clone();
        segments.push(s.last[..cut].to_string());
        let rs = ReStore::new(engine_over(s.dfs.clone()), ReStoreConfig::default());
        let report = rs.recover(&s.base, &segments).unwrap();
        prop_assert!(report.torn_tail.is_none());
        prop_assert_eq!(&rs.save_state(), &s.expected[idx]);
    }

    /// A degenerate **final** segment — the only slot a crash can
    /// damage arbitrarily — either recovers (reporting a torn tail for
    /// any cut that isn't a clean header prefix) or fails with a typed
    /// journal error. Never a panic, and the session left behind always
    /// round-trips through save/load.
    #[test]
    fn degenerate_final_segment_reports_or_fails_typed(junk in degenerate_segment()) {
        let s = scenario();
        let mut segments = s.prior.clone();
        segments.push(junk.clone());
        let rs = ReStore::new(engine_over(s.dfs.clone()), ReStoreConfig::default());
        match rs.recover(&s.base, &segments) {
            Ok(report) => {
                // Nothing decodable in the junk: the state is exactly
                // the prior-segments prefix (boundary 0 of the final
                // segment), and any short cut is called out as torn.
                prop_assert_eq!(&rs.save_state(), &s.expected[0]);
                let clean = junk == format!("{}\n", "restore-journal v1");
                prop_assert_eq!(report.torn_tail.is_none(), clean, "junk {:?}", &junk);
            }
            Err(Error::Journal { segment, .. }) => {
                prop_assert_eq!(segment, segments.len() - 1, "the junk segment is named");
            }
            Err(other) => prop_assert!(false, "expected a typed journal error, got {other:?}"),
        }
        let state = rs.save_state();
        let reload = ReStore::new(engine_over(s.dfs.clone()), ReStoreConfig::default());
        reload.load_state(&state).unwrap();
        prop_assert_eq!(reload.save_state(), state);
    }

    /// The same junk in a **non-final** slot is corruption, not a crash
    /// artifact: only a fully formed empty segment passes (holding zero
    /// records); everything else is a typed error naming segment 0 —
    /// never a torn-tail report, never a panic.
    #[test]
    fn degenerate_non_final_segment_fails_typed(junk in degenerate_segment()) {
        let s = scenario();
        let mut segments = vec![junk.clone()];
        segments.extend(s.prior.iter().cloned());
        segments.push(s.last.clone());
        let rs = ReStore::new(engine_over(s.dfs.clone()), ReStoreConfig::default());
        match rs.recover(&s.base, &segments) {
            Ok(report) => {
                prop_assert_eq!(&junk, &format!("{}\n", "restore-journal v1"));
                prop_assert!(report.torn_tail.is_none());
                prop_assert_eq!(&rs.save_state(), s.expected.last().unwrap());
            }
            Err(Error::Journal { segment, .. }) => prop_assert_eq!(segment, 0),
            Err(other) => prop_assert!(false, "expected a typed journal error, got {other:?}"),
        }
    }
}
