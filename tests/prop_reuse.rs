//! The reproduction's central correctness property, checked over random
//! data and random query parameters: **ReStore never changes query
//! answers** — reuse on, reuse off, any heuristic, warm or cold.

use proptest::prelude::*;
use restore_suite::common::{codec, Tuple, Value};
use restore_suite::core::{Heuristic, ReStore, ReStoreConfig};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};

fn engine_with(rows: &[Tuple]) -> Engine {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 128, replication: 2, node_capacity: None });
    dfs.write_all("/d", &codec::encode_all(rows)).unwrap();
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 3 },
    )
}

fn read_sorted(dfs: &Dfs, path: &str) -> Vec<Tuple> {
    let mut t = codec::decode_all(&dfs.read_all(path).unwrap()).unwrap();
    t.sort();
    t
}

/// Random rows: (key in a small domain, int, double).
fn rows() -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec(
        (0u8..8, -50i64..50, 0u32..1000).prop_map(|(k, n, d)| {
            Tuple::from_values(vec![
                Value::Str(format!("k{k}")),
                Value::Int(n),
                Value::Double(d as f64 / 10.0),
            ])
        }),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random data and a random filter threshold, a two-step workload
    /// (filter+group query, then a related query reusing the prefix)
    /// produces identical answers with and without ReStore.
    #[test]
    fn reuse_preserves_answers(
        data in rows(),
        threshold in -50i64..50,
        heuristic_pick in 0usize..3,
    ) {
        let heuristic = [
            Heuristic::Conservative,
            Heuristic::Aggressive,
            Heuristic::NoHeuristic,
        ][heuristic_pick];

        let q1 = format!(
            "A = load '/d' as (k, n:int, v:double);
             B = filter A by n > {threshold};
             G = group B by k;
             R = foreach G generate group, COUNT(B), SUM(B.v);
             store R into '/out/q1';"
        );
        let q2 = format!(
            "A = load '/d' as (k, n:int, v:double);
             B = filter A by n > {threshold};
             P = foreach B generate k, v;
             G = group P by k;
             R = foreach G generate group, MAX(P.v);
             store R into '/out/q2';"
        );

        // Baseline answers.
        let (want1, want2) = {
            let eng = engine_with(&data);
            let rs = ReStore::new(eng, ReStoreConfig::baseline());
            let e1 = rs.execute_query(&q1, "/wf/b1").unwrap();
            let w1 = read_sorted(rs.engine().dfs(), &e1.final_output);
            let e2 = rs.execute_query(&q2, "/wf/b2").unwrap();
            let w2 = read_sorted(rs.engine().dfs(), &e2.final_output);
            (w1, w2)
        };

        // ReStore answers (cold then warm, then the cross-query reuse).
        let eng = engine_with(&data);
        let rs = ReStore::new(
            eng,
            ReStoreConfig { heuristic, ..Default::default() },
        );
        let e1 = rs.execute_query(&q1, "/wf/r1").unwrap();
        prop_assert_eq!(
            read_sorted(rs.engine().dfs(), &e1.final_output),
            want1.clone()
        );
        let e1b = rs.execute_query(&q1, "/wf/r1b").unwrap();
        prop_assert_eq!(
            read_sorted(rs.engine().dfs(), &e1b.final_output),
            want1
        );
        let e2 = rs.execute_query(&q2, "/wf/r2").unwrap();
        prop_assert_eq!(
            read_sorted(rs.engine().dfs(), &e2.final_output),
            want2
        );
    }

    /// Projection-only workloads: random column subsets reuse cleanly.
    #[test]
    fn projection_reuse_preserves_answers(
        data in rows(),
        cols in prop::sample::subsequence(vec![0usize, 1, 2], 1..=3),
    ) {
        let names = ["k", "n", "v"];
        let proj: Vec<&str> = cols.iter().map(|&c| names[c]).collect();
        let q = format!(
            "A = load '/d' as (k, n:int, v:double);
             B = foreach A generate {};
             C = distinct B;
             store C into '/out/p';",
            proj.join(", ")
        );
        let want = {
            let eng = engine_with(&data);
            let rs = ReStore::new(eng, ReStoreConfig::baseline());
            let e = rs.execute_query(&q, "/wf/pb").unwrap();
            read_sorted(rs.engine().dfs(), &e.final_output)
        };
        let eng = engine_with(&data);
        let rs = ReStore::new(eng, ReStoreConfig::default());
        for round in 0..2 {
            let e = rs.execute_query(&q, &format!("/wf/pr{round}")).unwrap();
            prop_assert_eq!(
                read_sorted(rs.engine().dfs(), &e.final_output),
                want.clone(),
                "round {}", round
            );
        }
    }
}
