//! The shared-session guarantees of the wave-parallel driver:
//!
//! 1. wave-parallel execution is **byte-identical** to strict sequential
//!    execution (the paper's Algorithm 1) on multi-job PigMix workflows;
//! 2. one `ReStore` instance serves **concurrent query submissions** from
//!    many threads against a single shared repository, without changing
//!    any query's answer;
//! 3. the repository stays consistent under that concurrency: every
//!    entry's output exists in the DFS, usage accounting adds up, and the
//!    session state still round-trips through save/load.

use restore_suite::common::codec;
use restore_suite::core::{ReStore, ReStoreConfig};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_suite::pigmix::{datagen, queries, DataScale};

const SEED: u64 = 0xC0FFEE;

fn engine() -> Engine {
    let dfs =
        Dfs::new(DfsConfig { nodes: 4, block_size: 1024, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), SEED).expect("data generation");
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 3 },
    )
}

/// The workload of one session: multi-job L11 (3 jobs, 2 of them in one
/// wave) plus single-job queries that exercise sub-job reuse.
fn session_queries(tag: &str) -> Vec<(String, String)> {
    vec![
        (queries::l11(&format!("/out/{tag}/l11")), format!("/wf/{tag}/l11")),
        (queries::l3(&format!("/out/{tag}/l3")), format!("/wf/{tag}/l3")),
        (queries::l7(&format!("/out/{tag}/l7")), format!("/wf/{tag}/l7")),
        (queries::l8(&format!("/out/{tag}/l8")), format!("/wf/{tag}/l8")),
    ]
}

fn read_sorted(dfs: &Dfs, path: &str) -> Vec<restore_suite::common::Tuple> {
    let mut t = codec::decode_all(&dfs.read_all(path).unwrap()).unwrap();
    t.sort();
    t
}

/// Wave-parallel execution must be byte-identical to sequential: same
/// final bytes, same rewrites, same repository evolution.
#[test]
fn wave_parallel_output_matches_sequential() {
    let run = |wave_parallel: bool| {
        let rs = ReStore::new(engine(), ReStoreConfig { wave_parallel, ..Default::default() });
        let mut outputs: Vec<(Vec<u8>, usize, usize, usize)> = Vec::new();
        // Two rounds: cold execution, then warm (reuse-heavy) execution.
        for round in 0..2 {
            for (q, prefix) in session_queries(&format!("r{round}")) {
                let e = rs.execute_query(&q, &prefix).unwrap();
                let bytes = rs.engine().dfs().read_all(&e.final_output).unwrap();
                outputs.push((bytes, e.job_results.len(), e.jobs_skipped, e.rewrites.len()));
            }
        }
        let repo_len = rs.repository().len();
        (outputs, repo_len)
    };
    let parallel = run(true);
    let sequential = run(false);
    assert_eq!(parallel, sequential);
    // L11's first wave really does hold two independent jobs.
    let wf = restore_suite::dataflow::compile(&queries::l11("/out/x"), "/wf/x").unwrap();
    let waves = wf.waves().unwrap();
    assert_eq!(waves[0].len(), 2, "L11 must open with a two-job wave: {waves:?}");
}

/// N threads hammer one shared `ReStore` session; every query's answer
/// must equal the plain-Pig baseline, and the repository must stay
/// consistent.
#[test]
fn concurrent_sessions_preserve_answers() {
    const THREADS: usize = 8;

    // Baseline answers on an isolated engine (no reuse at all).
    let baseline_engine = engine();
    let baseline = ReStore::new(baseline_engine, ReStoreConfig::baseline());
    let mut expected = Vec::new();
    for (q, prefix) in session_queries("base") {
        let e = baseline.execute_query(&q, &prefix).unwrap();
        expected.push(read_sorted(baseline.engine().dfs(), &e.final_output));
    }

    // Shared session: all threads submit against one repository.
    let shared = ReStore::new(engine(), ReStoreConfig::default());
    let results: Vec<Vec<Vec<restore_suite::common::Tuple>>> = std::thread::scope(|scope| {
        let shared = &shared;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    session_queries(&format!("t{t}"))
                        .into_iter()
                        .map(|(q, prefix)| {
                            let e = shared.execute_query(&q, &prefix).unwrap();
                            // Interleave stats polling with registration in
                            // other threads: guards lock ordering (a
                            // repo-then-prov inversion deadlocks here).
                            let _ = shared.stats();
                            read_sorted(shared.engine().dfs(), &e.final_output)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session thread")).collect()
    });
    for (t, per_thread) in results.iter().enumerate() {
        for (i, got) in per_thread.iter().enumerate() {
            assert_eq!(got, &expected[i], "thread {t}, query {i} diverged from baseline");
        }
    }

    // Repository consistency after the storm.
    let stats = shared.stats();
    assert_eq!(stats.queries_executed, (THREADS * 4) as u64);
    assert!(stats.repository_entries > 0);
    {
        let repo = shared.repository();
        for entry in repo.entries() {
            assert!(
                shared.engine().dfs().exists(&entry.output_path),
                "repository entry {} points at missing file {}",
                entry.id,
                entry.output_path
            );
        }
        assert_eq!(
            stats.total_uses,
            repo.entries().iter().map(|e| e.stats().use_count).sum::<u64>()
        );
    }

    // The session state survives a save/load round trip.
    let state = shared.save_state();
    let resumed = ReStore::new(shared.engine().clone(), ReStoreConfig::default());
    resumed.load_state(&state).unwrap();
    assert_eq!(resumed.stats(), stats);
}

/// Racing identical cold queries: whoever registers first wins, everyone
/// answers correctly, and a warm rerun is served from the repository.
#[test]
fn racing_identical_queries_converge() {
    const THREADS: usize = 6;
    let shared = ReStore::new(engine(), ReStoreConfig::default());

    let outputs: Vec<Vec<restore_suite::common::Tuple>> = std::thread::scope(|scope| {
        let shared = &shared;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let q = queries::l3(&format!("/out/race/{t}"));
                    let e = shared.execute_query(&q, &format!("/wf/race/{t}")).unwrap();
                    read_sorted(shared.engine().dfs(), &e.final_output)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("race thread")).collect()
    });
    for (t, got) in outputs.iter().enumerate() {
        assert_eq!(got, &outputs[0], "racer {t} diverged");
    }

    // Warm rerun: both of L3's jobs are answered from the repository.
    let warm = shared.execute_query(&queries::l3("/out/race/warm"), "/wf/race/warm").unwrap();
    assert_eq!(warm.jobs_skipped, 2);
    assert!(warm.job_results.is_empty());
}
