//! Cross-crate integration tests: the full stack (parser → compiler →
//! ReStore → engine → DFS) under multi-query workloads.

use restore_suite::common::{codec, tuple, Tuple};
use restore_suite::core::{Heuristic, ReStore, ReStoreConfig, Repository};
use restore_suite::dfs::{Dfs, DfsConfig};
use restore_suite::mapreduce::{ClusterConfig, Engine, EngineConfig};
use restore_suite::pigmix::{datagen, queries, DataScale};

fn pigmix_engine() -> Engine {
    let dfs =
        Dfs::new(DfsConfig { nodes: 6, block_size: 4 << 10, replication: 2, node_capacity: None });
    datagen::generate(&dfs, &DataScale::tiny(), 1234).unwrap();
    Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 4, default_reduce_tasks: 4 },
    )
}

fn read_sorted(dfs: &Dfs, path: &str) -> Vec<Tuple> {
    let mut rows = codec::decode_all(&dfs.read_all(path).unwrap()).unwrap();
    rows.sort();
    rows
}

/// Every PigMix query must produce byte-identical (sorted) results under
/// every ReStore configuration, warm or cold.
#[test]
fn pigmix_results_invariant_under_reuse() {
    // Golden results from the plain baseline.
    let golden: Vec<(String, Vec<Tuple>)> = {
        let engine = pigmix_engine();
        let rs = ReStore::new(engine, ReStoreConfig::baseline());
        queries::standard_workload("/out/golden")
            .into_iter()
            .map(|(label, q)| {
                let e = rs.execute_query(&q, &format!("/wf/g-{label}")).unwrap();
                (label, read_sorted(rs.engine().dfs(), &e.final_output))
            })
            .collect()
    };

    for heuristic in [Heuristic::Conservative, Heuristic::Aggressive, Heuristic::NoHeuristic] {
        let engine = pigmix_engine();
        let rs = ReStore::new(engine, ReStoreConfig { heuristic, ..Default::default() });
        // Run the whole workload twice: cold (generating) and warm
        // (reusing). Both must match the golden answers.
        for round in 0..2 {
            for (i, (label, q)) in
                queries::standard_workload(&format!("/out/r{round}")).into_iter().enumerate()
            {
                let e =
                    rs.execute_query(&q, &format!("/wf/{heuristic:?}-{round}-{label}")).unwrap();
                let got = read_sorted(rs.engine().dfs(), &e.final_output);
                assert_eq!(got, golden[i].1, "{label} differs under {heuristic:?} round {round}");
            }
        }
    }
}

/// Queries submitted at different times share sub-plans; chains of reuse
/// must compose (Q1's sub-job feeds Q2, whose output feeds Q3's match).
#[test]
fn chained_reuse_across_three_queries() {
    let engine = pigmix_engine();
    let rs = ReStore::new(engine, ReStoreConfig::default());

    let q1 = queries::l2("/out/c1");
    rs.execute_query(&q1, "/wf/c1").unwrap();

    // Q2 extends the L2 join with a group — its first job should be
    // answered by L2's stored output (whole-job or join sub-job).
    let q2 = "
        A = load '/data/page_views' as (user, action:int, timestamp:int, est_revenue:double, page_info, page_links);
        B = foreach A generate user, est_revenue;
        alpha = load '/data/power_users' as (name, phone, address, city);
        beta = foreach alpha generate name;
        C = join beta by name, B by user;
        D = group C by $0;
        E = foreach D generate group, COUNT(C);
        store E into '/out/c2';
    ";
    let e2 = rs.execute_query(q2, "/wf/c2").unwrap();
    assert!(!e2.rewrites.is_empty(), "Q2 must reuse Q1's join: {:?}", e2.rewrites);

    // Q3 repeats Q2 — everything should come from the repository.
    let e3 = rs.execute_query(q2, "/wf/c3").unwrap();
    assert!(e3.jobs_skipped >= 1, "Q3 should skip at least the join job");
    assert_eq!(
        read_sorted(rs.engine().dfs(), &e3.final_output),
        read_sorted(rs.engine().dfs(), "/out/c2"),
    );
}

/// The repository survives a save/load cycle mid-workload and the
/// reloaded instance still rewrites queries.
#[test]
fn repository_persistence_mid_workload() {
    let engine = pigmix_engine();
    let rs = ReStore::new(engine.clone(), ReStoreConfig::default());
    rs.execute_query(&queries::l3("/out/p1"), "/wf/p1").unwrap();
    let saved = rs.repository().save();
    let entries_before = rs.repository().len();

    // "New session": same DFS, fresh driver, reloaded repository.
    let rs2 = ReStore::new(engine, ReStoreConfig::default());
    rs2.with_repository_mut_as(None, |repo| repo.adopt(Repository::load(&saved).unwrap()));
    assert_eq!(rs2.repository().len(), entries_before);

    // The fresh driver has no provenance, but repository matching works
    // on base-level plans directly, and L3's first job loads only base
    // data, so the whole-job match still fires.
    let e = rs2.execute_query(&queries::l3("/out/p2"), "/wf/p2").unwrap();
    assert!(!e.rewrites.is_empty(), "reloaded repository must still produce rewrites");
    assert_eq!(
        read_sorted(rs2.engine().dfs(), &e.final_output),
        read_sorted(rs2.engine().dfs(), "/out/p1"),
    );
}

/// Full session persistence: repository + provenance + counters survive,
/// so a resumed session behaves identically to the uninterrupted one —
/// including lineage-based matching through stored sub-job paths.
#[test]
fn full_session_state_round_trips() {
    let engine = pigmix_engine();
    let rs = ReStore::new(engine.clone(), ReStoreConfig::default());
    rs.execute_query(&queries::l2("/out/f1"), "/wf/f1").unwrap();
    rs.execute_query(&queries::l3("/out/f2"), "/wf/f2").unwrap();
    let state = rs.save_state();

    // Continue in the original session as the reference.
    let ref_exec = rs.execute_query(&queries::l7("/out/f3a"), "/wf/f3a").unwrap();

    // Resume from the snapshot in a "new process".
    let resumed = ReStore::new(engine, ReStoreConfig::default());
    resumed.load_state(&state).unwrap();
    assert!(!resumed.repository().is_empty());
    assert!(resumed.repository().len() <= rs.repository().len());
    let res_exec = resumed.execute_query(&queries::l7("/out/f3b"), "/wf/f3b").unwrap();

    // Both sessions rewrite the same way and produce the same rows.
    assert_eq!(res_exec.rewrites.len(), ref_exec.rewrites.len());
    assert_eq!(
        read_sorted(resumed.engine().dfs(), &res_exec.final_output),
        read_sorted(rs.engine().dfs(), &ref_exec.final_output),
    );
    // Candidate counters resumed: no path collisions with pre-snapshot
    // sub-job files (paths under /restore are all distinct).
    let paths = resumed.engine().dfs().list("/restore/");
    let mut dedup = paths.clone();
    dedup.dedup();
    assert_eq!(paths, dedup);
}

/// Workflow-shape invariants across the whole PigMix workload: modeled
/// times and Equation (1) totals are consistent.
#[test]
fn modeled_times_are_consistent() {
    let engine = pigmix_engine();
    let rs = ReStore::new(engine, ReStoreConfig::baseline());
    for (label, q) in queries::standard_workload("/out/t") {
        let e = rs.execute_query(&q, &format!("/wf/t-{label}")).unwrap();
        // Equation (1): total is at least the largest single job and at
        // most the sum of all jobs.
        let max_job = e.job_results.iter().map(|r| r.times.total_s).fold(0.0f64, f64::max);
        let sum_jobs: f64 = e.job_results.iter().map(|r| r.times.total_s).sum();
        assert!(e.total_s >= max_job - 1e-9, "{label}");
        assert!(e.total_s <= sum_jobs + 1e-9, "{label}");
        for r in &e.job_results {
            assert!(r.times.total_s > 0.0, "{label}/{}", r.job_name);
            assert!(r.counters.map_tasks > 0, "{label}/{}", r.job_name);
        }
    }
}

/// DFS-level bookkeeping: ReStore's stored artifacts live under its
/// repo prefix; the baseline leaves no temporaries behind.
#[test]
fn storage_accounting() {
    let engine = pigmix_engine();
    let before = engine.dfs().bytes_under("/restore/");
    let rs = ReStore::new(engine, ReStoreConfig::default());
    let e = rs.execute_query(&queries::l3("/out/s1"), "/wf/s1").unwrap();
    let after = rs.engine().dfs().bytes_under("/restore/");
    assert!(e.stored_candidate_bytes > 0);
    assert_eq!(after - before, e.stored_candidate_bytes);

    // Baseline cleans its temporaries.
    let engine2 = pigmix_engine();
    let base = ReStore::new(engine2, ReStoreConfig::baseline());
    base.execute_query(&queries::l3("/out/s2"), "/wf/s2base").unwrap();
    assert!(base.engine().dfs().list("/wf/s2base").is_empty());
}

/// A direct check of the tuple! data path: results computed through the
/// entire stack match a hand-rolled in-memory oracle.
#[test]
fn full_stack_matches_oracle() {
    let dfs =
        Dfs::new(DfsConfig { nodes: 3, block_size: 256, replication: 1, node_capacity: None });
    let rows: Vec<Tuple> = (0..200)
        .map(|i| tuple![format!("k{}", i % 13), i as i64, ((i * 7) % 100) as f64])
        .collect();
    dfs.write_all("/d", &codec::encode_all(&rows)).unwrap();
    let engine = Engine::new(
        dfs,
        ClusterConfig::default(),
        EngineConfig { worker_threads: 2, default_reduce_tasks: 3 },
    );
    let rs = ReStore::new(engine, ReStoreConfig::default());
    let e = rs
        .execute_query(
            "A = load '/d' as (k, n:int, v:double);
             B = filter A by n % 2 == 0;
             G = group B by k;
             R = foreach G generate group, COUNT(B), SUM(B.v);
             store R into '/out/oracle';",
            "/wf/oracle",
        )
        .unwrap();
    let got = read_sorted(rs.engine().dfs(), &e.final_output);

    use std::collections::BTreeMap;
    let mut oracle: BTreeMap<String, (i64, f64)> = BTreeMap::new();
    for t in rows.iter().filter(|t| t.get(1).as_i64().unwrap() % 2 == 0) {
        let e = oracle.entry(t.get(0).as_str().unwrap().into()).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += t.get(2).as_f64().unwrap();
    }
    let want: Vec<Tuple> = oracle.into_iter().map(|(k, (c, s))| tuple![k, c, s]).collect();
    assert_eq!(got, want);
}
